//! [`ShardedStore`]: N fully independent DStore instances behind one
//! Table-2 API.
//!
//! Every shard owns its whole vertical slice — PMEM pool, SSD device,
//! DIPPER log, checkpoint engine — so shards share *nothing* but the
//! router. Scaling writes then reduces to scaling the number of
//! serialized pool+log sections, and a checkpoint on one shard cannot
//! quiesce, slow, or even observe another.

use crate::router::Router;
use crate::scheduler::{Scheduler, SchedulerConfig, SchedulerMode};
use crate::superblock::{is_reserved, ShardMap};
use dstore::{
    CrashImage, CrashReport, DStore, DStoreConfig, DsContext, DsError, DsLock, DsResult, Footprint,
    ObjectHandle, ObjectStat, OpenMode, RecoveryReport, StatsSnapshot,
};
use dstore_telemetry::TelemetrySnapshot;
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Default router seed for stores that don't pick one.
pub const DEFAULT_ROUTER_SEED: u64 = 0x5EED_D570_12E5_7A2E;

/// Configuration for creating a [`ShardedStore`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (independent DStore instances).
    pub shards: u32,
    /// Router seed; persisted in every shard's shard map.
    pub router_seed: u64,
    /// Cross-shard checkpoint scheduling.
    pub scheduler: SchedulerConfig,
    /// Template for each shard's own config. File-backed paths get a
    /// `.shard<i>` suffix per shard; with any scheduler mode other than
    /// [`SchedulerMode::PerShardAuto`], per-shard `auto_checkpoint` is
    /// forced off so the scheduler is the only trigger.
    pub base: DStoreConfig,
}

impl ShardedConfig {
    /// A sharded config over `shards` copies of `base` with the default
    /// seed and staggered scheduling.
    pub fn new(shards: u32, base: DStoreConfig) -> Self {
        ShardedConfig {
            shards,
            router_seed: DEFAULT_ROUTER_SEED,
            scheduler: SchedulerConfig::default(),
            base,
        }
    }

    /// Sets the router seed.
    pub fn with_router_seed(mut self, seed: u64) -> Self {
        self.router_seed = seed;
        self
    }

    /// Sets the checkpoint scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    fn shard_cfg(&self, index: u32) -> DStoreConfig {
        let mut cfg = self.base.clone();
        if self.scheduler.mode != SchedulerMode::PerShardAuto {
            cfg.auto_checkpoint = false;
        }
        let suffix = |p: &PathBuf| PathBuf::from(format!("{}.shard{index}", p.display()));
        cfg.pmem_file = self.base.pmem_file.as_ref().map(&suffix);
        cfg.ssd_file = self.base.ssd_file.as_ref().map(&suffix);
        cfg
    }
}

/// What a sharded recovery did, merged across shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverySummary {
    /// Shards recovered.
    pub shards: usize,
    /// Shards that had to redo an interrupted checkpoint.
    pub redo_shards: usize,
    /// Total records replayed in checkpoint redos.
    pub redo_records: usize,
    /// Total committed active-log records replayed.
    pub replayed_records: usize,
    /// Wall-clock time of the whole parallel recovery.
    pub wall_ns: u64,
    /// Sum of per-shard recovery work (≥ `wall_ns` when shards actually
    /// recovered concurrently).
    pub cpu_ns: u64,
}

impl RecoverySummary {
    fn from_reports(reports: &[RecoveryReport], wall_ns: u64) -> Self {
        RecoverySummary {
            shards: reports.len(),
            redo_shards: reports.iter().filter(|r| r.redo_checkpoint).count(),
            redo_records: reports.iter().map(|r| r.redo_records).sum(),
            replayed_records: reports.iter().map(|r| r.replayed_records).sum(),
            wall_ns,
            cpu_ns: reports.iter().map(|r| r.total_ns()).sum(),
        }
    }
}

/// A hash-partitioned store over N independent [`DStore`] shards.
pub struct ShardedStore {
    stores: Arc<Vec<DStore>>,
    router: Router,
    scheduler: Option<Scheduler>,
    recovery: RecoverySummary,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.stores.len())
            .field("router", &self.router)
            .finish_non_exhaustive()
    }
}

impl ShardedStore {
    /// Creates a fresh sharded store: `cfg.shards` DStore instances,
    /// each stamped with its shard map.
    pub fn create(cfg: ShardedConfig) -> DsResult<Self> {
        if cfg.shards == 0 {
            return Err(DsError::ShardMismatch("shard count must be ≥ 1".into()));
        }
        let mut stores = Vec::with_capacity(cfg.shards as usize);
        for i in 0..cfg.shards {
            let store = DStore::create(cfg.shard_cfg(i))?;
            ShardMap {
                shard_count: cfg.shards,
                shard_index: i,
                router_seed: cfg.router_seed,
            }
            .persist(&store.context())?;
            stores.push(store);
        }
        let stores = Arc::new(stores);
        let scheduler =
            Scheduler::spawn(Arc::clone(&stores), cfg.scheduler, cfg.base.swap_threshold);
        Ok(ShardedStore {
            stores,
            router: Router::new(cfg.router_seed, cfg.shards),
            scheduler: Some(scheduler),
            recovery: RecoverySummary::default(),
        })
    }

    /// Reopens a **file-backed** sharded store after a process restart
    /// (clean exit or `kill -9`): derives each shard's device paths
    /// from `cfg` exactly as [`ShardedStore::create`] did (the
    /// `.shard<i>` suffixes), maps them without reformatting, and runs
    /// the normal parallel [`ShardedStore::recover`]. `cfg.shards`,
    /// the path template, and the geometry must match creation; the
    /// persisted shard maps then re-validate count and router seed.
    pub fn reopen(cfg: ShardedConfig) -> DsResult<Self> {
        if cfg.base.pmem_file.is_none() || cfg.base.ssd_file.is_none() {
            return Err(DsError::Io(
                "ShardedStore::reopen needs file-backed pmem_file + ssd_file".into(),
            ));
        }
        let images: Vec<CrashImage> = (0..cfg.shards)
            .map(|i| CrashImage::open(cfg.shard_cfg(i)))
            .collect::<DsResult<_>>()?;
        Self::recover(images, cfg.scheduler)
    }

    /// Recovers every shard **in parallel** and reassembles the store.
    ///
    /// Images may arrive in any order: each shard's persisted shard map
    /// names its index, and the store is reassembled in map order.
    /// Recovery is rejected with [`DsError::ShardMismatch`] if the image
    /// count disagrees with the persisted shard count, seeds differ
    /// across shards, or two images claim the same index.
    ///
    /// This composes two levels of parallelism: rayon fans the shards
    /// out here, and *within* each shard recovery replays its log
    /// OE-parallel across `replay_threads` workers (DESIGN.md §6d).
    /// For a many-shard fleet on a small host, consider pinning each
    /// shard's [`DStoreConfig::replay_threads`] down (or
    /// `DSTORE_REPLAY_THREADS=1`) so the multiplied worker count does
    /// not oversubscribe the machine.
    pub fn recover(images: Vec<CrashImage>, scheduler: SchedulerConfig) -> DsResult<Self> {
        if images.is_empty() {
            return Err(DsError::ShardMismatch("no shard images".into()));
        }
        let t = Instant::now();
        let recovered: Vec<DsResult<DStore>> =
            images.into_par_iter().map(DStore::recover).collect();
        let mut stores = Vec::with_capacity(recovered.len());
        for r in recovered {
            stores.push(r?);
        }
        let wall_ns = t.elapsed().as_nanos() as u64;

        // Validate the shard maps and sort the shards into index order.
        let maps: Vec<ShardMap> = stores
            .iter()
            .map(|s| ShardMap::load(&s.context()))
            .collect::<DsResult<_>>()?;
        let count = maps[0].shard_count;
        let seed = maps[0].router_seed;
        if count as usize != stores.len() {
            return Err(DsError::ShardMismatch(format!(
                "store was created with {count} shards, got {} images",
                stores.len()
            )));
        }
        let mut slots: Vec<Option<DStore>> = (0..stores.len()).map(|_| None).collect();
        for (store, map) in stores.into_iter().zip(&maps) {
            if map.shard_count != count || map.router_seed != seed {
                return Err(DsError::ShardMismatch(format!(
                    "shard {} disagrees: count {} seed {:#x} vs count {count} seed {seed:#x}",
                    map.shard_index, map.shard_count, map.router_seed
                )));
            }
            let slot = &mut slots[map.shard_index as usize];
            if slot.is_some() {
                return Err(DsError::ShardMismatch(format!(
                    "two images claim shard index {}",
                    map.shard_index
                )));
            }
            *slot = Some(store);
        }
        let stores: Vec<DStore> = slots.into_iter().map(|s| s.unwrap()).collect();

        let reports: Vec<RecoveryReport> = stores.iter().map(|s| s.recovery_report()).collect();
        let swap_threshold = stores[0].config().swap_threshold;
        let stores = Arc::new(stores);
        let scheduler = Scheduler::spawn(Arc::clone(&stores), scheduler, swap_threshold);
        Ok(ShardedStore {
            stores,
            router: Router::new(seed, count),
            scheduler: Some(scheduler),
            recovery: RecoverySummary::from_reports(&reports, wall_ns),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.router.shard_count()
    }

    /// The key→shard router.
    pub fn router(&self) -> Router {
        self.router
    }

    /// Direct access to one shard (tests, benches, diagnostics).
    pub fn shard(&self, i: usize) -> &DStore {
        &self.stores[i]
    }

    /// A context routing the Table-2 API across shards.
    pub fn context(&self) -> ShardedCtx {
        ShardedCtx {
            ctxs: self.stores.iter().map(|s| s.context()).collect(),
            router: self.router,
        }
    }

    /// Operation counters summed across shards.
    pub fn stats(&self) -> StatsSnapshot {
        let mut acc = StatsSnapshot::default();
        for s in self.stores.iter() {
            acc.merge(&s.stats().snapshot());
        }
        acc
    }

    /// Storage footprint summed across shards.
    pub fn footprint(&self) -> Footprint {
        let mut acc = Footprint::default();
        for s in self.stores.iter() {
            acc.merge(&s.footprint());
        }
        acc
    }

    /// Checkpoints completed, summed across shards (either engine).
    pub fn checkpoints_completed(&self) -> u64 {
        self.stores.iter().map(|s| s.checkpoints_completed()).sum()
    }

    /// One merged telemetry snapshot for the whole fleet: every shard's
    /// series tagged `shard="<i>"`, plus the scheduler's trigger
    /// counters. Empty (but still stamped) if every shard was created
    /// with `telemetry = false`.
    ///
    /// Fleet-wide aggregates fall out of the snapshot helpers — e.g.
    /// `merged_histogram("dstore_op_latency_ns")` for a global latency
    /// distribution, or per-`shard` label filtering for skew.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut merged = TelemetrySnapshot::new();
        for (i, s) in self.stores.iter().enumerate() {
            if let Some(snap) = s.telemetry_snapshot() {
                merged.absorb(snap.with_label("shard", &i.to_string()));
            }
        }
        if let Some(sched) = &self.scheduler {
            let c = sched.counters();
            merged.push_counter(
                "dstore_scheduler_triggers_total",
                Vec::new(),
                c.triggers.get(),
            );
            merged.push_counter(
                "dstore_scheduler_panic_triggers_total",
                Vec::new(),
                c.panic_triggers.get(),
            );
        }
        merged.sort();
        merged
    }

    /// Fleet-wide tail-latency attribution: pools every shard's retained
    /// traces (the merged snapshot keeps them apart under `shard="<i>"`
    /// labels; the pooled cut here answers "which segment makes the
    /// fleet's tail slow"). `None` when no shard has a retained trace.
    pub fn tail_attribution(&self, percentile: f64) -> Option<dstore_telemetry::TailAttribution> {
        let traces = self.telemetry_snapshot().all_traces("dstore_op_traces");
        if traces.is_empty() {
            return None;
        }
        Some(dstore_telemetry::TailAttribution::from_traces(
            &traces, percentile,
        ))
    }

    /// One fleet-wide health summary: counters summed across shards,
    /// log fill from the worst shard, and the first non-idle checkpoint
    /// phase (see [`dstore::HealthSnapshot::merge`]). This is what the
    /// server's `health` RPC returns; drill into
    /// [`ShardedStore::health_per_shard`] when it alarms.
    pub fn health(&self) -> dstore::HealthSnapshot {
        let mut acc = dstore::HealthSnapshot::default();
        for s in self.stores.iter() {
            acc.merge(&s.health());
        }
        acc
    }

    /// Per-shard health snapshots, index order.
    pub fn health_per_shard(&self) -> Vec<dstore::HealthSnapshot> {
        self.stores.iter().map(|s| s.health()).collect()
    }

    /// Live objects across shards (excluding the N shard-map objects).
    pub fn object_count(&self) -> u64 {
        let raw: u64 = self.stores.iter().map(|s| s.object_count()).sum();
        raw - self.shard_count() as u64
    }

    /// What the last [`ShardedStore::recover`] did (zeroes for a fresh
    /// store).
    pub fn recovery_summary(&self) -> RecoverySummary {
        self.recovery
    }

    /// Per-shard recovery reports (zeroes for a fresh store).
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.stores.iter().map(|s| s.recovery_report()).collect()
    }

    /// Per-shard post-mortems of the previous incarnation, exhumed from
    /// each shard's crash-persistent black box during recovery. Index
    /// order; `None` entries are shards with nothing to report (fresh
    /// store, black box disabled, or nothing decodable survived).
    pub fn crash_reports(&self) -> Vec<Option<CrashReport>> {
        self.stores
            .iter()
            .map(|s| s.crash_report().cloned())
            .collect()
    }

    /// Reads every shard's black box **without** recovering the store:
    /// opens each shard's devices exactly as [`ShardedStore::reopen`]
    /// would (the `.shard<i>` path suffixes) and synthesizes the
    /// per-shard reports from the durable images, which are left
    /// untouched. The post-mortem path for a store that is still down.
    pub fn post_mortem(cfg: &ShardedConfig) -> DsResult<Vec<Option<CrashReport>>> {
        if cfg.base.pmem_file.is_none() || cfg.base.ssd_file.is_none() {
            return Err(DsError::Io(
                "ShardedStore::post_mortem needs file-backed pmem_file + ssd_file".into(),
            ));
        }
        (0..cfg.shards)
            .map(|i| DStore::post_mortem(&CrashImage::open(cfg.shard_cfg(i))?))
            .collect()
    }

    /// Runs one complete checkpoint on every shard, sequentially.
    pub fn checkpoint_now(&self) {
        for s in self.stores.iter() {
            s.checkpoint_now();
        }
    }

    /// Blocks until no shard is checkpointing.
    pub fn wait_checkpoint_idle(&self) {
        for s in self.stores.iter() {
            s.wait_checkpoint_idle();
        }
    }

    /// Failure injection: performs the checkpoint *swap* (but not the
    /// apply) on the listed shards, leaving exactly those shards in the
    /// paper's worst-case crash window. See
    /// [`DStore::begin_checkpoint_swap_only`] for the preconditions.
    pub fn begin_checkpoint_swap_only_on(&self, shards: &[usize]) {
        for &i in shards {
            self.stores[i].begin_checkpoint_swap_only();
        }
    }

    fn into_stores(mut self) -> Vec<DStore> {
        // Stop the scheduler first: it holds the only other Arc.
        if let Some(mut sched) = self.scheduler.take() {
            sched.stop();
        }
        Arc::try_unwrap(std::mem::take(&mut self.stores))
            .ok()
            .expect("scheduler stopped; no other store references")
    }

    /// Simulates a power failure on every shard. Returns the crash
    /// images in shard order (though [`ShardedStore::recover`] accepts
    /// any order).
    pub fn crash(self) -> Vec<CrashImage> {
        self.into_stores().into_iter().map(DStore::crash).collect()
    }

    /// Clean shutdown: checkpoint everything, stop, return the images.
    pub fn close(self) -> Vec<CrashImage> {
        self.into_stores().into_iter().map(DStore::close).collect()
    }
}

/// Table-2 operation context over a [`ShardedStore`].
///
/// Key-addressed operations route to the owning shard; `list`/
/// `list_prefix` merge across shards (reserved names filtered, result
/// sorted for determinism). Names under the reserved shard-internal
/// prefix are rejected with [`DsError::ReservedName`].
pub struct ShardedCtx {
    ctxs: Vec<DsContext>,
    router: Router,
}

impl ShardedCtx {
    #[inline]
    fn route(&self, key: &[u8]) -> DsResult<&DsContext> {
        if is_reserved(key) {
            return Err(DsError::ReservedName);
        }
        Ok(&self.ctxs[self.router.shard_of(key)])
    }

    /// Creates or overwrites an object (`ds_put`).
    pub fn put(&self, key: &[u8], value: &[u8]) -> DsResult<()> {
        self.route(key)?.put(key, value)
    }

    /// Reads a whole object (`ds_get`).
    pub fn get(&self, key: &[u8]) -> DsResult<Vec<u8>> {
        self.route(key)?.get(key)
    }

    /// Deletes an object (`ds_delete`).
    pub fn delete(&self, key: &[u8]) -> DsResult<()> {
        self.route(key)?.delete(key)
    }

    /// Whether the object exists (reserved names are invisible).
    pub fn exists(&self, key: &[u8]) -> bool {
        self.route(key).map(|c| c.exists(key)).unwrap_or(false)
    }

    /// Object size in bytes.
    pub fn size_of(&self, key: &[u8]) -> DsResult<u64> {
        self.route(key)?.size_of(key)
    }

    /// Object metadata.
    pub fn stat(&self, key: &[u8]) -> DsResult<ObjectStat> {
        self.route(key)?.stat(key)
    }

    /// Opens an object for partial reads/writes (`ds_oread`/`ds_owrite`
    /// go through the returned handle).
    pub fn open(&self, name: &[u8], mode: OpenMode) -> DsResult<ObjectHandle<'_>> {
        self.route(name)?.open(name, mode)
    }

    /// Advisory per-object lock.
    pub fn lock(&self, name: &[u8]) -> DsResult<DsLock<'_>> {
        self.route(name)?.lock(name)
    }

    /// All object names across shards, sorted.
    pub fn list(&self) -> Vec<Vec<u8>> {
        let mut all: Vec<Vec<u8>> = self
            .ctxs
            .iter()
            .flat_map(|c| c.list())
            .filter(|n| !is_reserved(n))
            .collect();
        all.sort_unstable();
        all
    }

    /// All object names with the given prefix across shards, sorted.
    pub fn list_prefix(&self, prefix: &[u8]) -> Vec<Vec<u8>> {
        let mut all: Vec<Vec<u8>> = self
            .ctxs
            .iter()
            .flat_map(|c| c.list_prefix(prefix))
            .filter(|n| !is_reserved(n))
            .collect();
        all.sort_unstable();
        all
    }
}
