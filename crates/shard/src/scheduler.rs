//! Checkpoint scheduling across shards.
//!
//! Each shard is an independent DIPPER engine; left to their own
//! `auto_checkpoint`, shards filling at similar rates cross the swap
//! threshold within microseconds of each other and checkpoint *in
//! phase* — N simultaneous PMEM-read + shadow-write storms, which is
//! exactly the correlated bandwidth spike DIPPER exists to avoid inside
//! one store. The scheduler recreates tailless-ness at the fleet level:
//!
//! * [`SchedulerMode::Aligned`] — the naive baseline: when any shard
//!   crosses the threshold, trigger them all on the same tick.
//! * [`SchedulerMode::Staggered`] — trigger at most one shard per
//!   `stagger_gap`, fullest first, so checkpoint I/O of different
//!   shards is serialized instead of superimposed. A shard close to a
//!   full log (the backpressure cliff) bypasses the gap: a log-full
//!   stall costs more tail latency than one correlated checkpoint.

use dstore::DStore;
use dstore_telemetry::Counter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// When shards crossing `swap_threshold` get their checkpoint trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// No scheduler thread; each shard keeps its own `auto_checkpoint`.
    PerShardAuto,
    /// Trigger every shard at once when any crosses the threshold.
    Aligned,
    /// Trigger at most one shard per `stagger_gap`, fullest first.
    Staggered,
}

/// Scheduler thread configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Trigger policy.
    pub mode: SchedulerMode,
    /// How often the thread samples shard log occupancy.
    pub poll_interval: Duration,
    /// Minimum spacing between triggers in staggered mode.
    pub stagger_gap: Duration,
    /// Log occupancy at which staggered mode ignores the gap and
    /// triggers immediately (log-full is imminent).
    pub panic_threshold: f64,
    /// Staggered mode triggers the fullest shard at
    /// `swap_threshold * early_fraction`: checkpointing one shard early
    /// costs one decorrelated storm, while waiting for the full
    /// threshold on every shard is what lines the storms up.
    pub early_fraction: f64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            mode: SchedulerMode::Staggered,
            poll_interval: Duration::from_micros(200),
            stagger_gap: Duration::from_millis(2),
            panic_threshold: 0.92,
            early_fraction: 0.8,
        }
    }
}

impl SchedulerConfig {
    /// A config with the given mode and default timing.
    pub fn new(mode: SchedulerMode) -> Self {
        SchedulerConfig {
            mode,
            ..Default::default()
        }
    }
}

/// Trigger accounting for one scheduler thread. All counters are
/// cumulative since spawn; read them via [`Scheduler::counters`].
#[derive(Debug, Default)]
pub struct SchedulerCounters {
    /// Checkpoints the scheduler actually started (the shard accepted
    /// the trigger — it was not already checkpointing).
    pub triggers: Counter,
    /// Staggered triggers that bypassed the stagger gap because the
    /// shard's log was about to hit the log-full cliff. A rising value
    /// means `stagger_gap` is too wide (or shards fill faster than one
    /// serialized checkpoint can drain).
    pub panic_triggers: Counter,
}

/// Running scheduler thread; stops and joins on [`Scheduler::stop`].
pub struct Scheduler {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
    counters: Arc<SchedulerCounters>,
}

impl Scheduler {
    /// Spawns the scheduler over `stores` (no thread for
    /// [`SchedulerMode::PerShardAuto`]). `threshold` is the per-shard
    /// `swap_threshold` the trigger compares occupancy against.
    pub fn spawn(stores: Arc<Vec<DStore>>, cfg: SchedulerConfig, threshold: f64) -> Scheduler {
        let counters = Arc::new(SchedulerCounters::default());
        if cfg.mode == SchedulerMode::PerShardAuto {
            return Scheduler {
                stop: Arc::new(AtomicBool::new(true)),
                thread: None,
                counters,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let counters2 = Arc::clone(&counters);
        let thread = std::thread::Builder::new()
            .name("dstore-shard-ckpt".into())
            .spawn(move || run(&stores, cfg, threshold, &stop2, &counters2))
            .expect("spawn checkpoint scheduler");
        Scheduler {
            stop,
            thread: Some(thread),
            counters,
        }
    }

    /// Cumulative trigger counters (zeroes in
    /// [`SchedulerMode::PerShardAuto`], which never triggers).
    pub fn counters(&self) -> Arc<SchedulerCounters> {
        Arc::clone(&self.counters)
    }

    /// Stops the thread and waits for it to exit. Idempotent; also runs
    /// on drop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run(
    stores: &[DStore],
    cfg: SchedulerConfig,
    threshold: f64,
    stop: &AtomicBool,
    counters: &SchedulerCounters,
) {
    let mut last_trigger = Instant::now() - cfg.stagger_gap;
    while !stop.load(Ordering::Acquire) {
        match cfg.mode {
            SchedulerMode::Aligned => {
                if stores.iter().any(|s| s.log_used_fraction() >= threshold) {
                    for s in stores {
                        if s.checkpoint_async() {
                            counters.triggers.inc();
                        }
                    }
                }
            }
            SchedulerMode::Staggered => {
                // Fullest shard first: it is closest to the log-full
                // cliff, and triggering one shard at a time is what
                // decorrelates the spikes.
                let fullest = stores
                    .iter()
                    .map(|s| s.log_used_fraction())
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((i, used)) = fullest {
                    let gap_ok = last_trigger.elapsed() >= cfg.stagger_gap;
                    if used >= threshold * cfg.early_fraction
                        && (gap_ok || used >= cfg.panic_threshold)
                        && stores[i].checkpoint_async()
                    {
                        counters.triggers.inc();
                        if !gap_ok {
                            counters.panic_triggers.inc();
                        }
                        last_trigger = Instant::now();
                    }
                }
            }
            SchedulerMode::PerShardAuto => unreachable!("no thread in auto mode"),
        }
        std::thread::sleep(cfg.poll_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shard_auto_spawns_no_thread() {
        let s = Scheduler::spawn(
            Arc::new(Vec::new()),
            SchedulerConfig::new(SchedulerMode::PerShardAuto),
            0.75,
        );
        assert!(s.thread.is_none());
    }

    #[test]
    fn stop_is_idempotent() {
        let mut s = Scheduler::spawn(
            Arc::new(Vec::new()),
            SchedulerConfig::new(SchedulerMode::Staggered),
            0.75,
        );
        s.stop();
        s.stop();
        assert!(s.thread.is_none());
    }
}
