//! MongoDB-PMSE proxy: an uncached store with inline persistence.
//!
//! "MongoDB-PMSE uses PMEM optimized data structures to store data
//! in-place and uses PMDK's pmemobj-cpp library for crash consistency"
//! (§5.1). Every update runs an undo-logged transaction: persist the undo
//! record, persist the new value, persist the index update, persist the
//! commit — cache-line flushes and store fences at every step
//! ("the overhead of transactions to atomically update data in PMEM is
//! too high", §2.1). There are no checkpoints, so the timeline is flat
//! and recovery near-instant (Table 4/5) — but each operation pays the
//! transaction tax, and Optane's own tail latency surfaces at p999+
//! ("we believe this trend is because of the high tail latency of PMEM
//! itself", §5.4).

use crate::KvSystem;
use dstore_pmem::latency::spin_for_ns;
use dstore_pmem::PmemPool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Undo-log region at the head of the pool.
const UNDO_SIZE: usize = 1 << 20;
const SHARDS: usize = 64;

/// One shard of the name → (heap offset, length) index.
type IndexShard = HashMap<Vec<u8>, (usize, usize)>;

/// Tunables for the PMEM tail-latency injection.
#[derive(Debug, Clone)]
pub struct UncachedConfig {
    /// One in `spike_one_in` flush sequences hits a device tail event.
    pub spike_one_in: u64,
    /// Spike duration in ns (Optane tail events are 100 µs – 10 ms class;
    /// see \[66\] "An Empirical Guide to the Behavior and Use of Scalable
    /// Persistent Memory").
    pub spike_ns: u64,
    /// Emulated pointer-chase cost of the PMEM-resident index per
    /// operation, in ns (pmemobj offset translation + tree descent).
    pub traverse_ns: u64,
    /// Software-path cost per write in ns (the mongod + PMSE stack:
    /// pmemobj transactions with range snapshots and allocator
    /// bookkeeping, plus MongoDB's document layers — §2.1 "the overhead
    /// of transactions … is too high"; calibrated so DStore ends up
    /// ~10–15 % ahead on throughput, as in the paper's Table 5).
    pub software_put_ns: u64,
    /// Software-path cost per read in ns.
    pub software_get_ns: u64,
}

impl Default for UncachedConfig {
    fn default() -> Self {
        Self {
            spike_one_in: 4096,
            spike_ns: 2_000_000,
            traverse_ns: 600,
            software_put_ns: 22_000,
            software_get_ns: 20_000,
        }
    }
}

impl UncachedConfig {
    /// Zero software cost (unit tests).
    pub fn no_software_cost(mut self) -> Self {
        self.software_put_ns = 0;
        self.software_get_ns = 0;
        self.traverse_ns = 0;
        self
    }
}

/// The MongoDB-PMSE architectural proxy.
pub struct UncachedStore {
    pool: Arc<PmemPool>,
    cfg: UncachedConfig,
    /// Volatile mirror of the PMEM-resident index: name → (offset, len).
    /// (The real PMSE walks the tree in PMEM; the traverse_ns charge
    /// models that cost, the mirror keeps the proxy simple.)
    shards: Vec<Mutex<IndexShard>>,
    /// Bump allocator over the pool's value heap.
    heap_tail: AtomicUsize,
    /// Size-classed free lists (offset, capacity).
    free: Mutex<HashMap<usize, Vec<usize>>>,
    undo_tail: Mutex<usize>,
    rng: AtomicU64,
    /// Diagnostics: injected device-tail events.
    pub spikes: AtomicU64,
    /// Live value bytes.
    live_bytes: AtomicU64,
}

impl UncachedStore {
    /// Creates the store over a fresh pool.
    pub fn new(pool: Arc<PmemPool>, cfg: UncachedConfig) -> Arc<Self> {
        assert!(pool.len() > UNDO_SIZE + (1 << 20), "pool too small");
        Arc::new(Self {
            pool,
            cfg,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            heap_tail: AtomicUsize::new(UNDO_SIZE),
            free: Mutex::new(HashMap::new()),
            undo_tail: Mutex::new(0),
            rng: AtomicU64::new(0x1234_5678_9ABC_DEF1),
            spikes: AtomicU64::new(0),
            live_bytes: AtomicU64::new(0),
        })
    }

    fn shard(&self, key: &[u8]) -> &Mutex<IndexShard> {
        &self.shards[(dstore_index::fnv1a(key) as usize) & (SHARDS - 1)]
    }

    /// Maybe injects an Optane tail event.
    fn maybe_spike(&self) {
        if self.cfg.spike_one_in == 0 {
            return;
        }
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        if x.is_multiple_of(self.cfg.spike_one_in) {
            self.spikes.fetch_add(1, Ordering::Relaxed);
            spin_for_ns(self.cfg.spike_ns);
        }
    }

    fn alloc(&self, len: usize) -> usize {
        let class = len.next_power_of_two().max(64);
        if let Some(off) = self.free.lock().get_mut(&class).and_then(Vec::pop) {
            return off;
        }
        let off = self.heap_tail.fetch_add(class, Ordering::Relaxed);
        assert!(off + class <= self.pool.len(), "PMSE proxy heap exhausted");
        off
    }

    fn free_block(&self, off: usize, len: usize) {
        let class = len.next_power_of_two().max(64);
        self.free.lock().entry(class).or_default().push(off);
    }

    /// One undo-logged transaction step: persist an undo record
    /// describing the old state.
    fn undo_log(&self, bytes: usize) {
        let mut tail = self.undo_tail.lock();
        let off = if *tail + bytes > UNDO_SIZE { 0 } else { *tail };
        *tail = off + bytes;
        drop(tail);
        self.pool.persist(off, bytes.min(UNDO_SIZE - off));
    }
}

impl KvSystem for UncachedStore {
    fn name(&self) -> &'static str {
        "MongoDB-PMSE (uncached proxy)"
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        // pmemobj transaction machinery + PMEM index descent.
        spin_for_ns(self.cfg.software_put_ns + self.cfg.traverse_ns);
        self.maybe_spike();
        let mut shard = self.shard(key).lock();
        let old = shard.get(key).copied();

        // Transaction: ① undo record (old index entry + allocator state).
        self.undo_log(128);
        // ② allocate + persist the new value.
        let off = self.alloc(value.len().max(1));
        self.pool.write_bytes(off, value);
        self.pool.persist(off, value.len().max(1));
        // ③ persist the index update (tree node + parent links).
        self.undo_log(192);
        shard.insert(key.to_vec(), (off, value.len()));
        // ④ commit record.
        self.undo_log(64);
        drop(shard);

        if let Some((old_off, old_len)) = old {
            self.free_block(old_off, old_len.max(1));
            self.live_bytes.fetch_sub(old_len as u64, Ordering::Relaxed);
        }
        self.live_bytes
            .fetch_add(value.len() as u64, Ordering::Relaxed);
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        spin_for_ns(self.cfg.software_get_ns + self.cfg.traverse_ns);
        self.maybe_spike();
        let (off, len) = {
            let shard = self.shard(key).lock();
            *shard.get(key)?
        };
        let mut out = vec![0u8; len];
        self.pool.read_bytes(off, &mut out);
        // Reading 4 KB from Optane is slower than DRAM; charge read bw.
        self.pool.bulk_read_charge(len);
        Some(out)
    }

    fn delete(&self, key: &[u8]) {
        spin_for_ns(self.cfg.traverse_ns);
        let removed = {
            let mut shard = self.shard(key).lock();
            self.undo_log(128);
            shard.remove(key)
        };
        if let Some((off, len)) = removed {
            self.undo_log(64);
            self.free_block(off, len.max(1));
            self.live_bytes.fetch_sub(len as u64, Ordering::Relaxed);
        }
    }

    fn quiesce(&self) {
        // Inline persistence: nothing is ever pending.
    }

    fn footprint(&self) -> (u64, u64, u64) {
        let index: u64 = self
            .shards
            .iter()
            .map(|s| s.lock().keys().map(|k| k.len() + 32).sum::<usize>() as u64)
            .sum();
        let pmem = self.heap_tail.load(Ordering::Relaxed) as u64 + index;
        // The volatile mirror is bookkeeping, not a cache; PMSE itself
        // keeps everything in PMEM.
        (index, pmem, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Arc<UncachedStore> {
        let pool = Arc::new(PmemPool::anon(64 << 20));
        UncachedStore::new(
            pool,
            UncachedConfig {
                spike_one_in: 0, // deterministic tests
                ..Default::default()
            },
        )
    }

    #[test]
    fn put_get_delete() {
        let s = store();
        s.put(b"k", b"hello");
        assert_eq!(s.get(b"k").unwrap(), b"hello");
        s.put(b"k", b"world!");
        assert_eq!(s.get(b"k").unwrap(), b"world!");
        s.delete(b"k");
        assert_eq!(s.get(b"k"), None);
    }

    #[test]
    fn overwrite_recycles_heap() {
        let s = store();
        s.put(b"k", &vec![1u8; 4096]);
        let tail0 = s.heap_tail.load(Ordering::Relaxed);
        for _ in 0..50 {
            s.put(b"k", &vec![2u8; 4096]);
        }
        let tail1 = s.heap_tail.load(Ordering::Relaxed);
        // One extra block at most (ping-pong between two slots).
        assert!(tail1 - tail0 <= 8192, "heap leak: {}", tail1 - tail0);
    }

    #[test]
    fn values_live_in_pmem_only() {
        let s = store();
        for i in 0..100 {
            s.put(format!("k{i}").as_bytes(), &vec![0u8; 1024]);
        }
        let (dram, pmem, ssd) = s.footprint();
        assert_eq!(ssd, 0);
        assert!(pmem > 100 * 1024);
        assert!(dram < pmem, "index bookkeeping only");
    }

    #[test]
    fn spike_injection_fires() {
        let pool = Arc::new(PmemPool::anon(16 << 20));
        let s = UncachedStore::new(
            pool,
            UncachedConfig {
                spike_one_in: 16,
                spike_ns: 1000,
                traverse_ns: 0,
                software_put_ns: 0,
                software_get_ns: 0,
            },
        );
        for i in 0..500 {
            s.put(format!("k{i}").as_bytes(), b"v");
        }
        assert!(s.spikes.load(Ordering::Relaxed) > 5);
    }

    #[test]
    fn concurrent_distinct_keys() {
        let s = store();
        std::thread::scope(|sc| {
            for t in 0..4 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..200 {
                        let k = format!("t{t}k{i}");
                        s.put(k.as_bytes(), &vec![t as u8; 512]);
                        assert_eq!(s.get(k.as_bytes()).unwrap(), vec![t as u8; 512]);
                    }
                });
            }
        });
    }
}
