//! Metadata-update cost models for PMEM-aware filesystems (Figure 6).
//!
//! "We measure the metadata overhead of 4 KB writes to a file for each
//! system" (§5.2). Each model performs the PMEM persistence operations
//! its filesystem executes per 4 KB file write:
//!
//! * **xfs-DAX** — in-place inode update plus an XFS log (journal) record
//!   for the transaction: journal record + inode, each flushed+fenced.
//! * **ext4-DAX** — jbd2 journals whole metadata *blocks*: descriptor +
//!   a 4 KB block image + commit record, flushed+fenced in order.
//! * **NOVA** — appends a 64 B entry to the inode's per-inode log and
//!   persists the log tail: two small flush+fence pairs ("NOVA must
//!   update the file's inode as well as add the operation to the inode's
//!   log, both of which must be made in PMEM").
//! * **DStore** — updates metadata *in DRAM* and appends one compact
//!   logical record to the DIPPER log: a single cache-line flush+fence.

use dstore_pmem::latency::spin_for_ns;
use dstore_pmem::PmemPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which filesystem's metadata path to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// xfs with DAX.
    XfsDax,
    /// ext4 with DAX (jbd2 block journaling).
    Ext4Dax,
    /// NOVA (per-inode logs).
    Nova,
    /// DStore's DIPPER metadata path.
    DStore,
}

impl FsKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FsKind::XfsDax => "xfs-DAX",
            FsKind::Ext4Dax => "ext4-DAX",
            FsKind::Nova => "NOVA",
            FsKind::DStore => "DStore",
        }
    }

    /// All kinds, in the paper's figure order.
    pub fn all() -> [FsKind; 4] {
        [
            FsKind::DStore,
            FsKind::Nova,
            FsKind::XfsDax,
            FsKind::Ext4Dax,
        ]
    }
}

/// A filesystem metadata-path model over an emulated PMEM device.
pub struct DaxFs {
    kind: FsKind,
    pool: Arc<PmemPool>,
    cursor: AtomicUsize,
    /// Software path cost in ns (VFS + allocator + tree walk), calibrated
    /// per system; DStore's userspace run-to-completion path avoids most
    /// of it (§5.2 "avoiding context switches in the critical path").
    software_ns: u64,
}

impl DaxFs {
    /// Creates a model of `kind` over `pool`.
    pub fn new(kind: FsKind, pool: Arc<PmemPool>) -> Self {
        let software_ns = match kind {
            // Kernel VFS entry/exit + journal machinery.
            FsKind::XfsDax => 900,
            FsKind::Ext4Dax => 900,
            FsKind::Nova => 500,
            // Userspace run-to-completion.
            FsKind::DStore => 100,
        };
        Self {
            kind,
            pool,
            cursor: AtomicUsize::new(0),
            software_ns,
        }
    }

    fn bump(&self, len: usize) -> usize {
        let off = self.cursor.fetch_add(len, Ordering::Relaxed);
        off % (self.pool.len() - 8192)
    }

    /// Performs the metadata work of one 4 KB file write.
    pub fn metadata_update(&self) {
        spin_for_ns(self.software_ns);
        match self.kind {
            FsKind::XfsDax => {
                // XFS log record (~256 B: transaction header + inode core)
                let off = self.bump(256);
                self.pool.write_bytes(off, &[0xAA; 256]);
                self.pool.persist(off, 256);
                // In-place inode timestamp/size update.
                let ino = self.bump(64);
                self.pool.write_bytes(ino, &[0xBB; 64]);
                self.pool.persist(ino, 64);
            }
            FsKind::Ext4Dax => {
                // jbd2: descriptor block + full 4 KB metadata block image
                // + commit block.
                let off = self.bump(4096 + 128);
                self.pool.write_bytes(off, &[0xCC; 64]);
                self.pool.persist(off, 64);
                let img = self.bump(4096);
                self.pool.write_bytes(img, &[0xDD; 4096]);
                self.pool.persist(img, 4096);
                let commit = self.bump(64);
                self.pool.write_bytes(commit, &[0xEE; 64]);
                self.pool.persist(commit, 64);
            }
            FsKind::Nova => {
                // Per-inode log entry (64 B) + log tail pointer.
                let entry = self.bump(64);
                self.pool.write_bytes(entry, &[0x11; 64]);
                self.pool.persist(entry, 64);
                let tail = self.bump(8);
                self.pool.write_bytes(tail, &[0x22; 8]);
                self.pool.persist(tail, 8);
            }
            FsKind::DStore => {
                // DRAM metadata update (free) + one compact logical
                // record: a single cache-line flush + fence.
                let rec = self.bump(64);
                self.pool.write_bytes(rec, &[0x33; 48]);
                self.pool.persist(rec, 48);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstore_pmem::{LatencyModel, PoolBuilder};
    use std::time::Instant;

    fn timed_pool() -> Arc<PmemPool> {
        Arc::new(
            PoolBuilder::new(16 << 20)
                .latency(LatencyModel::optane())
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn ordering_matches_figure6() {
        // DStore < NOVA < xfs-DAX < ext4-DAX in metadata cost. Other test
        // threads add noise to spin-injected latencies, so take the
        // minimum of several batches (robust to interference spikes).
        let pool = timed_pool();
        let mut costs = vec![];
        for kind in FsKind::all() {
            let fs = DaxFs::new(kind, Arc::clone(&pool));
            fs.metadata_update(); // warm
            let mut best = u64::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                for _ in 0..300 {
                    fs.metadata_update();
                }
                best = best.min(t.elapsed().as_nanos() as u64 / 300);
            }
            costs.push((kind, best));
        }
        // `all()` is ordered cheapest-first.
        for w in costs.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "{:?} ({} ns) should be cheaper than {:?} ({} ns)",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
        // DStore is several times cheaper than ext4-DAX.
        let dstore = costs[0].1;
        let ext4 = costs[3].1;
        assert!(ext4 > 3 * dstore, "ext4 {ext4} vs dstore {dstore}");
    }

    #[test]
    fn updates_touch_pmem() {
        let pool = Arc::new(PmemPool::anon(16 << 20));
        let fs = DaxFs::new(FsKind::Nova, Arc::clone(&pool));
        fs.metadata_update();
        let s = pool.stats().snapshot();
        assert!(s.flush_bytes > 0);
        assert!(s.fences >= 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FsKind::XfsDax.name(), "xfs-DAX");
        assert_eq!(FsKind::DStore.name(), "DStore");
        assert_eq!(FsKind::all().len(), 4);
    }
}
