//! PMEM-RocksDB proxy: a cached LSM store with a PMEM WAL.
//!
//! Architecture (matching the paper's description in §2.1/§5.1): writes
//! append the full key+value to a PMEM-resident WAL, then land in a DRAM
//! memtable. When the memtable fills it is frozen; **if a frozen memtable
//! is still being flushed, writers stall** — "the level 0 files must be
//! locked until they have been compacted and merged into the next level".
//! A background thread flushes frozen memtables into SSD sorted runs and
//! continuously compacts runs; when the run count exceeds the stall
//! threshold, writes are throttled (RocksDB write stalls) — the
//! continuous-compaction interference of Figure 7 ("for a short duration,
//! it was unable to serve any update requests").

use crate::KvSystem;
use dstore_pmem::PmemPool;
use dstore_ssd::{SsdDevice, PAGE_SIZE};
use parking_lot::{Condvar, Mutex};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A flushed sorted run: index in DRAM, values on SSD.
struct Run {
    /// key → (page, offset_in_page_unused, len). One value per page for
    /// simplicity (4 KB workloads are page-sized anyway).
    index: BTreeMap<Vec<u8>, Option<(u64, u32)>>,
    pages: Vec<u64>,
}

/// Memtable contents: key → value (`None` = tombstone).
type Memtable = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

struct Tables {
    memtable: Memtable,
    memtable_bytes: usize,
    /// Frozen memtable being flushed (readable).
    immutable: Option<Arc<Memtable>>,
    /// Newest first.
    runs: Vec<Arc<Run>>,
}

/// Tunables.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Memtable size that triggers a freeze+flush.
    pub memtable_bytes: usize,
    /// Run count that triggers compaction.
    pub compact_at: usize,
    /// Run count at which writers stall until compaction catches up.
    pub stall_at: usize,
    /// Software-path cost per write in ns (RocksDB's write path: WAL
    /// framing, memtable skiplist, write group machinery). Calibrated so
    /// per-op latencies sit where the paper's Figure 5 puts them.
    pub software_put_ns: u64,
    /// Software-path cost per read in ns (version set, bloom/block
    /// lookups across levels).
    pub software_get_ns: u64,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 4 << 20,
            compact_at: 4,
            stall_at: 8,
            software_put_ns: 12_000,
            software_get_ns: 15_000,
        }
    }
}

impl LsmConfig {
    /// Zero software cost (unit tests).
    pub fn no_software_cost(mut self) -> Self {
        self.software_put_ns = 0;
        self.software_get_ns = 0;
        self
    }
}

/// The PMEM-RocksDB architectural proxy.
pub struct LsmStore {
    pool: Arc<PmemPool>,
    ssd: Arc<SsdDevice>,
    cfg: LsmConfig,
    tables: Mutex<Tables>,
    work_cv: Condvar,
    /// Page allocator for the SSD (bump + free list).
    next_page: AtomicU64,
    free_pages: Mutex<Vec<u64>>,
    /// WAL cursor (ring; contents are not replayed in benchmarks, only
    /// the persistence cost matters).
    wal_tail: Mutex<usize>,
    shutdown: AtomicBool,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Write stalls observed (frozen-memtable waits + run backpressure).
    pub stalls: AtomicU64,
    /// Memtable flushes completed.
    pub flushes: AtomicU64,
    /// Compactions completed.
    pub compactions: AtomicU64,
}

/// WAL region size within the pool.
const WAL_SIZE: usize = 8 << 20;

impl LsmStore {
    /// Creates the store over fresh devices.
    pub fn new(pool: Arc<PmemPool>, ssd: Arc<SsdDevice>, cfg: LsmConfig) -> Arc<Self> {
        assert!(pool.len() >= WAL_SIZE, "pool too small for the WAL");
        let store = Arc::new(Self {
            pool,
            ssd,
            cfg,
            tables: Mutex::new(Tables {
                memtable: BTreeMap::new(),
                memtable_bytes: 0,
                immutable: None,
                runs: Vec::new(),
            }),
            work_cv: Condvar::new(),
            next_page: AtomicU64::new(1),
            free_pages: Mutex::new(Vec::new()),
            wal_tail: Mutex::new(0),
            shutdown: AtomicBool::new(false),
            worker: Mutex::new(None),
            stalls: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        });
        let w = Arc::clone(&store);
        *store.worker.lock() = Some(
            std::thread::Builder::new()
                .name("lsm-flush".into())
                .spawn(move || w.background_loop())
                .expect("spawn lsm worker"),
        );
        store
    }

    /// Appends a WAL record: the full key+value must be persisted (this
    /// is physical logging — the cost DIPPER's logical records avoid).
    fn wal_append(&self, key: &[u8], value: &[u8]) {
        let len = 16 + key.len() + value.len();
        let mut tail = self.wal_tail.lock();
        let off = if *tail + len > WAL_SIZE { 0 } else { *tail };
        *tail = off + len;
        drop(tail);
        // Only the device cost matters for benchmarks; write a length
        // header plus payload and persist it.
        self.pool.write_bytes(off, &(len as u64).to_le_bytes());
        self.pool.write_bytes(off + 8, &key[..key.len().min(256)]);
        self.pool.write_bytes(
            off + 8 + key.len().min(256),
            &value[..value.len().min(8192)],
        );
        self.pool.persist(off, len.min(WAL_SIZE - off));
    }

    fn alloc_page(&self) -> u64 {
        if let Some(p) = self.free_pages.lock().pop() {
            return p;
        }
        let p = self.next_page.fetch_add(1, Ordering::Relaxed);
        assert!(p < self.ssd.pages(), "LSM proxy SSD exhausted");
        p
    }

    fn write_insert(&self, key: &[u8], value: Option<Vec<u8>>) {
        self.wal_append(key, value.as_deref().unwrap_or(b""));
        let bytes = key.len() + value.as_ref().map_or(0, |v| v.len());
        let mut t = self.tables.lock();
        // Stall while compaction is hopelessly behind (RocksDB write
        // stall) — the quiescence violation.
        while t.runs.len() >= self.cfg.stall_at {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            self.work_cv.notify_all();
            self.work_cv.wait(&mut t);
        }
        t.memtable.insert(key.to_vec(), value);
        t.memtable_bytes += bytes;
        if t.memtable_bytes >= self.cfg.memtable_bytes {
            // Freeze. If the previous frozen memtable is still being
            // flushed, the writer must wait — "locked until compacted".
            while t.immutable.is_some() {
                self.stalls.fetch_add(1, Ordering::Relaxed);
                self.work_cv.notify_all();
                self.work_cv.wait(&mut t);
            }
            let frozen = std::mem::take(&mut t.memtable);
            t.memtable_bytes = 0;
            t.immutable = Some(Arc::new(frozen));
            self.work_cv.notify_all();
        }
    }

    fn background_loop(&self) {
        loop {
            let job = {
                let mut t = self.tables.lock();
                loop {
                    if self.shutdown.load(Ordering::Acquire) && t.immutable.is_none() {
                        return;
                    }
                    if let Some(imm) = &t.immutable {
                        break Job::Flush(Arc::clone(imm));
                    }
                    if t.runs.len() >= self.cfg.compact_at {
                        break Job::Compact(t.runs.clone());
                    }
                    self.work_cv.wait(&mut t);
                }
            };
            match job {
                Job::Flush(imm) => {
                    let run = self.build_run(imm.iter().map(|(k, v)| (k.clone(), v.clone())));
                    let mut t = self.tables.lock();
                    t.runs.insert(0, Arc::new(run));
                    t.immutable = None;
                    self.flushes.fetch_add(1, Ordering::Relaxed);
                    self.work_cv.notify_all();
                }
                Job::Compact(runs) => {
                    // Merge all runs newest-first into one (newest wins).
                    let mut merged: Memtable = BTreeMap::new();
                    for run in &runs {
                        for (k, loc) in &run.index {
                            merged.entry(k.clone()).or_insert_with(|| {
                                loc.map(|(page, len)| {
                                    let mut buf = vec![0u8; PAGE_SIZE];
                                    self.ssd.read_pages(page, &mut buf);
                                    buf.truncate(len as usize);
                                    buf
                                })
                            });
                        }
                    }
                    // Drop tombstones at the bottom level.
                    let merged_run =
                        self.build_run(merged.into_iter().filter(|(_, v)| v.is_some()));
                    let mut t = self.tables.lock();
                    // Free the superseded runs' pages.
                    let n = runs.len();
                    let mut free = self.free_pages.lock();
                    for run in t.runs.drain(..n) {
                        free.extend(&run.pages);
                    }
                    drop(free);
                    t.runs.push(Arc::new(merged_run));
                    self.compactions.fetch_add(1, Ordering::Relaxed);
                    self.work_cv.notify_all();
                }
            }
        }
    }

    fn build_run(&self, entries: impl Iterator<Item = (Vec<u8>, Option<Vec<u8>>)>) -> Run {
        let mut index = BTreeMap::new();
        let mut pages = Vec::new();
        for (k, v) in entries {
            match v {
                Some(v) => {
                    let page = self.alloc_page();
                    let mut buf = vec![0u8; PAGE_SIZE.max(v.len().next_multiple_of(PAGE_SIZE))];
                    buf[..v.len()].copy_from_slice(&v);
                    // One value per page run of pages (values ≤ 4 KB in
                    // the evaluation; larger values take the first page's
                    // worth — proxies only need the cost shape).
                    self.ssd.write_pages(page, &buf[..PAGE_SIZE]);
                    index.insert(k, Some((page, v.len().min(PAGE_SIZE) as u32)));
                    pages.push(page);
                }
                None => {
                    index.insert(k, None);
                }
            }
        }
        Run { index, pages }
    }
}

enum Job {
    Flush(Arc<Memtable>),
    Compact(Vec<Arc<Run>>),
}

/// Bytes of SSD data currently referenced by the runs in `t`.
fn ssd_estimate(t: &Tables) -> u64 {
    t.runs
        .iter()
        .map(|r| r.pages.len() as u64 * PAGE_SIZE as u64)
        .sum()
}

impl KvSystem for LsmStore {
    fn name(&self) -> &'static str {
        "PMEM-RocksDB (LSM proxy)"
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        dstore_pmem::latency::spin_for_ns(self.cfg.software_put_ns);
        self.write_insert(key, Some(value.to_vec()));
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        dstore_pmem::latency::spin_for_ns(self.cfg.software_get_ns);
        let (mem_hit, runs) = {
            let t = self.tables.lock();
            if let Some(v) = t.memtable.get(key) {
                return v.clone();
            }
            if let Some(imm) = &t.immutable {
                if let Some(v) = imm.get(key) {
                    return v.clone();
                }
            }
            (false, t.runs.clone())
        };
        let _ = mem_hit;
        for run in &runs {
            if let Some(loc) = run.index.get(key) {
                return loc.map(|(page, len)| {
                    let mut buf = vec![0u8; PAGE_SIZE];
                    self.ssd.read_pages(page, &mut buf);
                    buf.truncate(len as usize);
                    buf
                });
            }
        }
        None
    }

    fn delete(&self, key: &[u8]) {
        self.write_insert(key, None);
    }

    fn quiesce(&self) {
        loop {
            {
                let t = self.tables.lock();
                if t.immutable.is_none() && t.runs.len() < self.cfg.compact_at {
                    return;
                }
            }
            self.work_cv.notify_all();
            std::thread::yield_now();
        }
    }

    fn footprint(&self) -> (u64, u64, u64) {
        let t = self.tables.lock();
        let mem = t.memtable_bytes as u64;
        let imm: u64 = t
            .immutable
            .as_ref()
            .map(|m| {
                m.iter()
                    .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
                    .sum::<usize>() as u64
            })
            .unwrap_or(0);
        let index: u64 = t
            .runs
            .iter()
            .map(|r| r.index.keys().map(|k| k.len() + 16).sum::<usize>() as u64)
            .sum();
        // RocksDB reserves its write buffers plus a block cache in DRAM
        // (the paper: "reserve a large chunk of DRAM as their cache space
        // but only actually utilize a small portion of it"); model the
        // reservation as 2x write buffers + a block cache scaled to the
        // data set, floored at RocksDB-typical defaults.
        let block_cache = (ssd_estimate(&t) / 2).max(64 << 20);
        let dram = (self.cfg.memtable_bytes * 2) as u64 + block_cache + mem + imm + index;
        let pmem = WAL_SIZE as u64;
        let ssd_pages: u64 = t.runs.iter().map(|r| r.pages.len() as u64).sum();
        (dram, pmem, ssd_pages * PAGE_SIZE as u64)
    }
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_cv.notify_all();
        if let Some(w) = self.worker.lock().take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cfg: LsmConfig) -> Arc<LsmStore> {
        let pool = Arc::new(PmemPool::anon(16 << 20));
        let ssd = Arc::new(SsdDevice::anon(16 * 1024));
        LsmStore::new(pool, ssd, cfg.no_software_cost())
    }

    #[test]
    fn put_get_delete() {
        let s = store(LsmConfig::default());
        s.put(b"a", b"1");
        s.put(b"b", b"2");
        assert_eq!(s.get(b"a").unwrap(), b"1");
        s.delete(b"a");
        assert_eq!(s.get(b"a"), None);
        assert_eq!(s.get(b"b").unwrap(), b"2");
        assert_eq!(s.get(b"missing"), None);
    }

    #[test]
    fn survives_memtable_flushes_and_compaction() {
        let s = store(LsmConfig {
            memtable_bytes: 16 << 10,
            compact_at: 3,
            stall_at: 6,
            ..Default::default()
        });
        for i in 0..500 {
            s.put(format!("key{i:04}").as_bytes(), &vec![i as u8; 512]);
        }
        s.quiesce();
        assert!(s.flushes.load(Ordering::Relaxed) > 0, "no flush happened");
        assert!(
            s.compactions.load(Ordering::Relaxed) > 0,
            "no compaction happened"
        );
        for i in 0..500 {
            assert_eq!(
                s.get(format!("key{i:04}").as_bytes()).unwrap(),
                vec![i as u8; 512],
                "key{i}"
            );
        }
    }

    #[test]
    fn newest_value_wins_across_levels() {
        let s = store(LsmConfig {
            memtable_bytes: 8 << 10,
            compact_at: 2,
            stall_at: 4,
            ..Default::default()
        });
        for round in 0..6u8 {
            for i in 0..40 {
                s.put(format!("k{i}").as_bytes(), &vec![round; 400]);
            }
        }
        s.quiesce();
        for i in 0..40 {
            assert_eq!(s.get(format!("k{i}").as_bytes()).unwrap(), vec![5u8; 400]);
        }
    }

    #[test]
    fn deletes_survive_compaction() {
        let s = store(LsmConfig {
            memtable_bytes: 8 << 10,
            compact_at: 2,
            stall_at: 4,
            ..Default::default()
        });
        for i in 0..60 {
            s.put(format!("d{i}").as_bytes(), &vec![1u8; 300]);
        }
        for i in 0..30 {
            s.delete(format!("d{i}").as_bytes());
        }
        for i in 60..120 {
            s.put(format!("d{i}").as_bytes(), &vec![2u8; 300]);
        }
        s.quiesce();
        for i in 0..30 {
            assert_eq!(s.get(format!("d{i}").as_bytes()), None, "d{i} not deleted");
        }
        for i in 30..60 {
            assert!(s.get(format!("d{i}").as_bytes()).is_some());
        }
    }

    #[test]
    fn footprint_reports_all_tiers() {
        let s = store(LsmConfig {
            memtable_bytes: 8 << 10,
            ..Default::default()
        });
        for i in 0..100 {
            s.put(format!("f{i}").as_bytes(), &vec![0u8; 1000]);
        }
        s.quiesce();
        let (dram, pmem, ssd) = s.footprint();
        assert!(dram > 0);
        assert_eq!(pmem, WAL_SIZE as u64);
        assert!(ssd > 0, "flushed runs must occupy SSD");
    }

    #[test]
    fn concurrent_writers() {
        let s = store(LsmConfig {
            memtable_bytes: 32 << 10,
            ..Default::default()
        });
        std::thread::scope(|sc| {
            for t in 0..4 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..100 {
                        s.put(format!("t{t}k{i}").as_bytes(), &vec![t as u8; 700]);
                    }
                });
            }
        });
        s.quiesce();
        for t in 0..4 {
            for i in 0..100 {
                assert!(s.get(format!("t{t}k{i}").as_bytes()).is_some());
            }
        }
    }
}
