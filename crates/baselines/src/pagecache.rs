//! MongoDB-PM / WiredTiger proxy: a B-tree with a DRAM page cache, a PMEM
//! journal, and periodic checkpoints that lock the cache.
//!
//! "MongoDB-PM uses a btree with a DRAM-backed page cache. On checkpoint,
//! the page cache is locked until all pages are made durable. The need to
//! lock the frontend results in significant delay for requests arriving
//! during checkpoints and consequently high tail latency." (§2.1)

use crate::KvSystem;
use dstore_pmem::PmemPool;
use dstore_ssd::{SsdDevice, PAGE_SIZE};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Journal region size within the pool.
const JOURNAL_SIZE: usize = 8 << 20;

/// One cached "page": a key range's entries plus dirty flag. SSD backing
/// starts at `ssd_base` pages, `pages_per_slot` pages per slot.
struct Page {
    entries: BTreeMap<Vec<u8>, Vec<u8>>,
    dirty: bool,
}

/// Tunables.
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// Number of cache pages (keys hash across them).
    pub pages: usize,
    /// Checkpoint after this many journaled writes (the periodic
    /// checkpoint — MongoDB's default is time-based; write-count is the
    /// deterministic equivalent).
    pub checkpoint_every: u64,
    /// Software-path cost per write in ns (MongoDB + WiredTiger layers:
    /// BSON handling, snapshotting, cursor machinery). Calibrated to the
    /// paper's Figure 5 (MongoDB-PM updates ≈ 3–4× DStore's).
    pub software_put_ns: u64,
    /// Software-path cost per read in ns.
    pub software_get_ns: u64,
}

impl Default for PageCacheConfig {
    fn default() -> Self {
        Self {
            pages: 1024,
            checkpoint_every: 8192,
            software_put_ns: 28_000,
            software_get_ns: 12_000,
        }
    }
}

impl PageCacheConfig {
    /// Zero software cost (unit tests).
    pub fn no_software_cost(mut self) -> Self {
        self.software_put_ns = 0;
        self.software_get_ns = 0;
        self
    }
}

/// The MongoDB-PM architectural proxy.
pub struct PageCacheBTree {
    pool: Arc<PmemPool>,
    ssd: Arc<SsdDevice>,
    cfg: PageCacheConfig,
    /// Every op holds `read`; the checkpoint holds `write` for its whole
    /// duration — the cache lock.
    ckpt_lock: RwLock<()>,
    pages: Vec<Mutex<Page>>,
    journal_tail: Mutex<usize>,
    writes: AtomicU64,
    /// Diagnostics.
    pub checkpoints: AtomicU64,
}

impl PageCacheBTree {
    /// Creates the store over fresh devices.
    pub fn new(pool: Arc<PmemPool>, ssd: Arc<SsdDevice>, cfg: PageCacheConfig) -> Arc<Self> {
        assert!(pool.len() >= JOURNAL_SIZE, "pool too small for the journal");
        let pages = (0..cfg.pages)
            .map(|_| {
                Mutex::new(Page {
                    entries: BTreeMap::new(),
                    dirty: false,
                })
            })
            .collect();
        Arc::new(Self {
            pool,
            ssd,
            cfg,
            ckpt_lock: RwLock::new(()),
            pages,
            journal_tail: Mutex::new(0),
            writes: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
        })
    }

    fn page_of(&self, key: &[u8]) -> usize {
        (dstore_index::fnv1a(key) as usize) % self.cfg.pages
    }

    /// Journals the write to PMEM (key + value: WiredTiger journals full
    /// document images).
    fn journal_append(&self, key: &[u8], value: &[u8]) {
        let len = 16 + key.len() + value.len();
        let mut tail = self.journal_tail.lock();
        let off = if *tail + len > JOURNAL_SIZE { 0 } else { *tail };
        *tail = off + len;
        drop(tail);
        self.pool.write_bytes(off, &(len as u64).to_le_bytes());
        self.pool.write_bytes(off + 8, &key[..key.len().min(256)]);
        self.pool.write_bytes(
            off + 8 + key.len().min(256),
            &value[..value.len().min(8192)],
        );
        self.pool.persist(off, len.min(JOURNAL_SIZE - off));
    }

    /// The checkpoint: write-lock the cache, persist every dirty page to
    /// SSD, release. Requests arriving meanwhile wait on the lock.
    fn checkpoint(&self) {
        let _w = self.ckpt_lock.write();
        for (i, page) in self.pages.iter().enumerate() {
            let mut p = page.lock();
            if !p.dirty {
                continue;
            }
            // Serialize the page: charge one SSD page write per 4 KB of
            // content (WiredTiger writes whole btree pages).
            let bytes: usize = p
                .entries
                .iter()
                .map(|(k, v)| k.len() + v.len() + 16)
                .sum::<usize>()
                .max(1);
            let ssd_pages = bytes.div_ceil(PAGE_SIZE);
            // Slot i owns a fixed page range on the SSD.
            let base = 1 + (i as u64) * 64;
            for sp in 0..ssd_pages.min(64) as u64 {
                let buf = vec![0u8; PAGE_SIZE];
                self.ssd.write_pages(base + sp, &buf);
            }
            p.dirty = false;
        }
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }
}

impl KvSystem for PageCacheBTree {
    fn name(&self) -> &'static str {
        "MongoDB-PM (page-cache proxy)"
    }

    fn put(&self, key: &[u8], value: &[u8]) {
        dstore_pmem::latency::spin_for_ns(self.cfg.software_put_ns);
        {
            let _r = self.ckpt_lock.read();
            self.journal_append(key, value);
            let mut p = self.pages[self.page_of(key)].lock();
            p.entries.insert(key.to_vec(), value.to_vec());
            p.dirty = true;
        }
        // Periodic checkpoint — executed inline by the unlucky writer,
        // blocking everyone (the paper's "requests arriving during
        // checkpoints must wait").
        let w = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        if w.is_multiple_of(self.cfg.checkpoint_every) {
            self.checkpoint();
        }
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        // Reads also wait out checkpoints ("checkpoints impact both read
        // and write requests", §5.4).
        dstore_pmem::latency::spin_for_ns(self.cfg.software_get_ns);
        let _r = self.ckpt_lock.read();
        let p = self.pages[self.page_of(key)].lock();
        p.entries.get(key).cloned()
    }

    fn delete(&self, key: &[u8]) {
        let _r = self.ckpt_lock.read();
        self.journal_append(key, b"");
        let mut p = self.pages[self.page_of(key)].lock();
        p.entries.remove(key);
        p.dirty = true;
    }

    fn quiesce(&self) {
        self.checkpoint();
    }

    fn footprint(&self) -> (u64, u64, u64) {
        let mut dram = 0u64;
        let mut ssd_bytes = 0u64;
        for page in &self.pages {
            let p = page.lock();
            let bytes: usize = p.entries.iter().map(|(k, v)| k.len() + v.len() + 16).sum();
            dram += bytes as u64;
            ssd_bytes += (bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE) as u64;
        }
        // MongoDB reserves a large cache (default: half of RAM; modelled
        // as 2x the live data, min 64 MB — "reserve a large chunk of DRAM
        // ... but only actually utilize a small portion").
        let reserved = (dram * 2).max(64 << 20);
        (reserved, JOURNAL_SIZE as u64, ssd_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cfg: PageCacheConfig) -> Arc<PageCacheBTree> {
        let pool = Arc::new(PmemPool::anon(16 << 20));
        let ssd = Arc::new(SsdDevice::anon(128 * 1024));
        PageCacheBTree::new(pool, ssd, cfg.no_software_cost())
    }

    #[test]
    fn put_get_delete() {
        let s = store(PageCacheConfig::default());
        s.put(b"x", b"one");
        assert_eq!(s.get(b"x").unwrap(), b"one");
        s.put(b"x", b"two");
        assert_eq!(s.get(b"x").unwrap(), b"two");
        s.delete(b"x");
        assert_eq!(s.get(b"x"), None);
    }

    #[test]
    fn checkpoint_triggers_and_clears_dirty() {
        let s = store(PageCacheConfig {
            pages: 64,
            checkpoint_every: 100,
            ..Default::default()
        });
        for i in 0..250 {
            s.put(format!("k{i}").as_bytes(), &[0u8; 100]);
        }
        assert!(s.checkpoints.load(Ordering::Relaxed) >= 2);
        // Data still readable after checkpoints.
        for i in 0..250 {
            assert!(s.get(format!("k{i}").as_bytes()).is_some());
        }
    }

    #[test]
    fn reads_block_during_checkpoint() {
        use std::time::{Duration, Instant};
        let s = store(PageCacheConfig {
            pages: 2048,
            checkpoint_every: u64::MAX,
            ..Default::default()
        });
        // Dirty lots of pages so the checkpoint takes a while with a
        // latency-modelled SSD... here devices are free, so just verify
        // mutual exclusion via lock semantics.
        for i in 0..2000 {
            s.put(format!("k{i}").as_bytes(), &[0u8; 64]);
        }
        let s2 = Arc::clone(&s);
        let ck = std::thread::spawn(move || s2.quiesce());
        // Concurrent reads must still complete (after the checkpoint).
        let t0 = Instant::now();
        while s.get(b"k0").is_none() && t0.elapsed() < Duration::from_secs(2) {}
        ck.join().unwrap();
        assert!(s.get(b"k0").is_some());
    }

    #[test]
    fn footprint_includes_reservation() {
        let s = store(PageCacheConfig::default());
        for i in 0..100 {
            s.put(format!("f{i}").as_bytes(), &vec![0u8; 1000]);
        }
        let (dram, pmem, _ssd) = s.footprint();
        assert!(dram >= 64 << 20, "reserved cache must dominate");
        assert_eq!(pmem, JOURNAL_SIZE as u64);
    }

    #[test]
    fn concurrent_mixed_workload() {
        let s = store(PageCacheConfig {
            pages: 256,
            checkpoint_every: 500,
            ..Default::default()
        });
        std::thread::scope(|sc| {
            for t in 0..4 {
                let s = &s;
                sc.spawn(move || {
                    for i in 0..300 {
                        let k = format!("t{t}k{}", i % 50);
                        s.put(k.as_bytes(), &[t as u8; 200]);
                        assert!(s.get(k.as_bytes()).is_some());
                    }
                });
            }
        });
    }
}
