//! Architectural proxies for the paper's comparison systems.
//!
//! The paper compares DStore against one representative of each row of its
//! Table 1. Porting the real codebases (RocksDB, MongoDB, PMSE, three
//! filesystems) is neither feasible offline nor what the evaluation
//! isolates — the paper's argument is about *persistence architectures*.
//! Each proxy here reproduces the architecture and its characteristic
//! stall behaviour on the same emulated devices DStore runs on:
//!
//! * [`LsmStore`] — **PMEM-RocksDB** (cached, continuous async
//!   checkpoint): DRAM memtable + PMEM WAL + SSD sorted runs. Memtable
//!   flushes block writers while the immutable memtable is compacted
//!   ("the level 0 files must be locked until they have been compacted"),
//!   and compaction backlog stalls writes — the quiescence violation of
//!   Figure 7.
//! * [`PageCacheBTree`] — **MongoDB-PM / WiredTiger** (cached, periodic
//!   async checkpoint): DRAM page cache over SSD + PMEM journal; the
//!   periodic checkpoint write-locks the cache while every dirty page is
//!   made durable ("the page cache is locked until all pages are made
//!   durable") — the big tail-latency spikes of Figures 1 and 8.
//! * [`UncachedStore`] — **MongoDB-PMSE** (uncached, inline persistence):
//!   index and values live in PMEM, every update runs an undo-logged
//!   transaction with cache-line flushes and fences. No checkpoints, flat
//!   timeline, near-instant recovery — but every operation pays the
//!   transaction tax, and PMEM's own tail latency (§5.4, \[66\]) shows up
//!   at p999+.
//! * [`daxfs`] — metadata-update cost models for **xfs-DAX**, **ext4-DAX**
//!   and **NOVA** (Figure 6).
//!
//! All proxies implement [`KvSystem`] so the benchmark harnesses can run
//! them interchangeably with DStore.

#![warn(missing_docs)]

pub mod daxfs;
pub mod lsm;
pub mod pagecache;
pub mod uncached;

pub use daxfs::{DaxFs, FsKind};
pub use lsm::LsmStore;
pub use pagecache::PageCacheBTree;
pub use uncached::UncachedStore;

/// A key-value system under benchmark.
pub trait KvSystem: Send + Sync {
    /// Short display name for benchmark tables.
    fn name(&self) -> &'static str;
    /// Stores `value` under `key`, durably.
    fn put(&self, key: &[u8], value: &[u8]);
    /// Fetches the value under `key`.
    fn get(&self, key: &[u8]) -> Option<Vec<u8>>;
    /// Deletes `key`.
    fn delete(&self, key: &[u8]);
    /// Forces any pending checkpoint/flush work to complete.
    fn quiesce(&self);
    /// `(dram, pmem, ssd)` bytes in use (Figure 10).
    fn footprint(&self) -> (u64, u64, u64);
}

#[cfg(test)]
mod tests {
    // Trait object safety check.
    #[test]
    fn kv_system_is_object_safe() {
        fn _take(_s: &dyn super::KvSystem) {}
    }
}
