//! Read-write concurrency control: the read-count table.
//!
//! "Since read requests are not added to the log, read-write request
//! conflicts can still occur. For resolving read-write concurrency, we
//! introduce a new in-memory hash table that maps object names to their
//! current read count. The read count is updated using the atomic
//! fetch-and-add instruction … In case the read count is non-zero, we
//! simply poll on it until it is zero." (§4.4)
//!
//! The table is sharded to keep the map locks off the hot path: the shard
//! lock is only held to find/insert the counter; the count itself is a
//! shared atomic updated lock-free.

use crate::fnv1a;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of shards (power of two).
const SHARDS: usize = 64;

/// Sharded object-name → read-count table.
pub struct ReadCounts {
    shards: Vec<Mutex<HashMap<Vec<u8>, Arc<AtomicU64>>>>,
    stall_timeout: std::time::Duration,
}

impl Default for ReadCounts {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadCounts {
    /// Creates an empty table with the default 30 s deadlock-detector
    /// budget.
    pub fn new() -> Self {
        Self::with_stall_timeout(std::time::Duration::from_secs(30))
    }

    /// Creates an empty table whose [`ReadCounts::wait_for_readers`]
    /// panics after `stall_timeout`.
    pub fn with_stall_timeout(stall_timeout: std::time::Duration) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stall_timeout,
        }
    }

    #[inline]
    fn shard(&self, name: &[u8]) -> &Mutex<HashMap<Vec<u8>, Arc<AtomicU64>>> {
        &self.shards[(fnv1a(name) as usize) & (SHARDS - 1)]
    }

    fn counter(&self, name: &[u8]) -> Arc<AtomicU64> {
        let mut shard = self.shard(name).lock();
        if let Some(c) = shard.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(AtomicU64::new(0));
        shard.insert(name.to_vec(), Arc::clone(&c));
        c
    }

    /// Registers a reader of `name` (atomic fetch-and-add). The returned
    /// guard decrements the count when dropped.
    pub fn begin_read(&self, name: &[u8]) -> ReadGuard {
        let counter = self.counter(name);
        counter.fetch_add(1, Ordering::AcqRel);
        ReadGuard { counter }
    }

    /// Current read count for `name`.
    pub fn read_count(&self, name: &[u8]) -> u64 {
        let shard = self.shard(name).lock();
        shard.get(name).map_or(0, |c| c.load(Ordering::Acquire))
    }

    /// Spins until no reader holds `name` — the writer-side poll.
    pub fn wait_for_readers(&self, name: &[u8]) {
        let counter = {
            let shard = self.shard(name).lock();
            match shard.get(name) {
                Some(c) => Arc::clone(c),
                None => return,
            }
        };
        let t = std::time::Instant::now();
        while counter.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
            // Deadlock detector: readers hold their count for one op only.
            if t.elapsed() > self.stall_timeout {
                panic!(
                    "wait_for_readers stalled >{:?} on {:?} — leaked ReadGuard?",
                    self.stall_timeout,
                    String::from_utf8_lossy(name)
                );
            }
        }
    }

    /// Drops zero-count entries (housekeeping; bounds table growth under
    /// churny key sets).
    pub fn prune(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .retain(|_, c| c.load(Ordering::Acquire) != 0 || Arc::strong_count(c) > 1);
        }
    }

    /// Number of tracked names (all shards).
    pub fn tracked(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

/// RAII reader registration; decrements the read count on drop.
pub struct ReadGuard {
    counter: Arc<AtomicU64>,
}

impl Drop for ReadGuard {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn guard_increments_and_decrements() {
        let rc = ReadCounts::new();
        assert_eq!(rc.read_count(b"obj"), 0);
        let g1 = rc.begin_read(b"obj");
        let g2 = rc.begin_read(b"obj");
        assert_eq!(rc.read_count(b"obj"), 2);
        drop(g1);
        assert_eq!(rc.read_count(b"obj"), 1);
        drop(g2);
        assert_eq!(rc.read_count(b"obj"), 0);
    }

    #[test]
    fn distinct_names_are_independent() {
        let rc = ReadCounts::new();
        let _g = rc.begin_read(b"a");
        assert_eq!(rc.read_count(b"a"), 1);
        assert_eq!(rc.read_count(b"b"), 0);
        // A writer to "b" does not wait.
        rc.wait_for_readers(b"b");
    }

    #[test]
    fn writer_waits_until_reader_finishes() {
        use std::sync::Arc as StdArc;
        let rc = StdArc::new(ReadCounts::new());
        let g = rc.begin_read(b"hot");
        let rc2 = StdArc::clone(&rc);
        let waiter = std::thread::spawn(move || {
            rc2.wait_for_readers(b"hot");
            std::time::Instant::now()
        });
        std::thread::sleep(Duration::from_millis(30));
        let released = std::time::Instant::now();
        drop(g);
        let woke = waiter.join().unwrap();
        assert!(woke >= released, "writer returned before reader released");
    }

    #[test]
    fn prune_drops_idle_entries() {
        let rc = ReadCounts::new();
        {
            let _g = rc.begin_read(b"temp");
        }
        assert_eq!(rc.tracked(), 1);
        rc.prune();
        assert_eq!(rc.tracked(), 0);
        // Active entries survive pruning.
        let _g = rc.begin_read(b"live");
        rc.prune();
        assert_eq!(rc.tracked(), 1);
    }

    #[test]
    fn concurrent_readers_count_correctly() {
        use std::sync::Arc as StdArc;
        let rc = StdArc::new(ReadCounts::new());
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let rc = StdArc::clone(&rc);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _g = rc.begin_read(b"contended");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rc.read_count(b"contended"), 0);
    }
}
