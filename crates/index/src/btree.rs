//! The object-index B-tree.
//!
//! A classic B-tree (minimum degree `t = 8`) storing byte-string keys and
//! `u64` values, with every node and key allocated from an
//! [`Arena`] and linked by [`RelPtr`]s. Because the structure contains no
//! absolute pointers, it can be bulk-copied between regions (checkpoint
//! shadow copies, recovery PMEM→DRAM reconstruction) and the *same* code
//! mutates both the frontend tree and its PMEM shadow during replay.
//!
//! # Concurrency
//!
//! The tree is a single-writer structure; DStore wraps it in a short
//! critical section (the paper measures its in-lock metadata work at
//! <300 ns, §5.3) and extracts parallelism *across* structures via
//! observational equivalence, not inside the tree.

use dstore_arena::{Arena, ArenaPod, ByteSlice, Memory, RelPtr};
use std::cmp::Ordering;

/// Minimum degree `t`: every node except the root holds at least `t-1`
/// keys; every node holds at most `2t-1`.
const T: usize = 8;
/// Maximum keys per node.
const MAX_KEYS: usize = 2 * T - 1;
/// Maximum children per node.
const MAX_CHILDREN: usize = 2 * T;

/// A B-tree node. `#[repr(C)]` and pod so it can live in an arena.
#[repr(C)]
pub struct Node {
    /// 1 if leaf, 0 if internal.
    leaf: u16,
    /// Number of keys currently stored.
    count: u16,
    _pad: u32,
    keys: [ByteSlice; MAX_KEYS],
    vals: [u64; MAX_KEYS],
    children: [RelPtr<Node>; MAX_CHILDREN],
}

// SAFETY: Node is repr(C), built from pods, zero-valid (leaf=0/count=0 with
// null pointers is a valid empty internal node that is never dereferenced
// before initialization).
unsafe impl ArenaPod for Node {}

/// Arena-resident tree root state.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct BTreeHeader {
    root: RelPtr<Node>,
    len: u64,
}

// SAFETY: two pods; zero means "empty tree".
unsafe impl ArenaPod for BTreeHeader {}

/// A handle binding a tree header to the arena it lives in.
///
/// All mutating methods require external synchronization (callers hold the
/// store's index lock); read methods may run concurrently with each other
/// but not with writers.
pub struct BTreeHandle<'a, M: Memory> {
    arena: &'a Arena<M>,
    hdr: RelPtr<BTreeHeader>,
}

impl<'a, M: Memory> BTreeHandle<'a, M> {
    /// Allocates an empty tree in `arena` and returns its handle. The
    /// header offset ([`BTreeHandle::header_ptr`]) is what gets stored in
    /// DStore's directory so shadows can re-attach.
    pub fn create(arena: &'a Arena<M>) -> Self {
        let hdr: RelPtr<BTreeHeader> = arena.alloc();
        let root: RelPtr<Node> = arena.alloc();
        // SAFETY: fresh allocations, exclusively ours.
        unsafe {
            let r = &mut *arena.resolve(root);
            r.leaf = 1;
            let h = &mut *arena.resolve(hdr);
            h.root = root;
            h.len = 0;
        }
        Self { arena, hdr }
    }

    /// Re-binds a handle to an existing header (after a region copy or
    /// recovery).
    pub fn attach(arena: &'a Arena<M>, hdr: RelPtr<BTreeHeader>) -> Self {
        Self { arena, hdr }
    }

    /// The arena offset of the tree header.
    pub fn header_ptr(&self) -> RelPtr<BTreeHeader> {
        self.hdr
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        // SAFETY: header is live for the handle's lifetime.
        unsafe { (*self.arena.resolve(self.hdr)).len }
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // helpers

    /// Raw node access.
    ///
    /// SAFETY contract: `p` must be a live node; caller must not create
    /// overlapping `&mut` to the same node.
    #[allow(clippy::mut_from_ref)]
    unsafe fn node(&self, p: RelPtr<Node>) -> &mut Node {
        &mut *self.arena.resolve(p)
    }

    unsafe fn key_bytes(&self, s: ByteSlice) -> &[u8] {
        self.arena.bytes(s)
    }

    /// Compares a stored key with a probe key.
    unsafe fn cmp(&self, stored: ByteSlice, probe: &[u8]) -> Ordering {
        self.key_bytes(stored).cmp(probe)
    }

    /// Position of `key` in `node`: `Ok(i)` exact match at `i`, `Err(i)`
    /// the child index to descend into.
    unsafe fn position(&self, n: &Node, key: &[u8]) -> Result<usize, usize> {
        // Nodes hold at most 15 keys; linear scan beats binary search here.
        for i in 0..n.count as usize {
            match self.cmp(n.keys[i], key) {
                Ordering::Equal => return Ok(i),
                Ordering::Greater => return Err(i),
                Ordering::Less => {}
            }
        }
        Err(n.count as usize)
    }

    // ------------------------------------------------------------------
    // lookup

    /// Returns the value stored for `key`.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        // SAFETY: read-only traversal of live nodes.
        unsafe {
            let mut p = (*self.arena.resolve(self.hdr)).root;
            loop {
                let n = self.node(p);
                match self.position(n, key) {
                    Ok(i) => return Some(n.vals[i]),
                    Err(i) => {
                        if n.leaf == 1 {
                            return None;
                        }
                        p = n.children[i];
                    }
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    // ------------------------------------------------------------------
    // insert

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: &[u8], val: u64) -> Option<u64> {
        // SAFETY: single-writer contract; distinct nodes only.
        unsafe {
            let hdr = self.arena.resolve(self.hdr);
            let root = (*hdr).root;
            if self.node(root).count as usize == MAX_KEYS {
                // Grow the tree: new root with old root as child 0.
                let new_root: RelPtr<Node> = self.arena.alloc();
                {
                    let nr = self.node(new_root);
                    nr.leaf = 0;
                    nr.count = 0;
                    nr.children[0] = root;
                }
                self.split_child(new_root, 0);
                (*hdr).root = new_root;
            }
            let prev = self.insert_nonfull((*hdr).root, key, val);
            if prev.is_none() {
                (*hdr).len += 1;
            }
            prev
        }
    }

    /// Splits the full child `ci` of `parent` (which must not be full).
    unsafe fn split_child(&self, parent: RelPtr<Node>, ci: usize) {
        let p = self.node(parent);
        let left_ptr = p.children[ci];
        let right_ptr: RelPtr<Node> = self.arena.alloc();
        let left = self.node(left_ptr);
        let right = self.node(right_ptr);
        debug_assert_eq!(left.count as usize, MAX_KEYS);

        right.leaf = left.leaf;
        right.count = (T - 1) as u16;
        // Upper T-1 keys move to the new right node.
        for i in 0..T - 1 {
            right.keys[i] = left.keys[i + T];
            right.vals[i] = left.vals[i + T];
            left.keys[i + T] = ByteSlice::empty();
        }
        if left.leaf == 0 {
            for i in 0..T {
                right.children[i] = left.children[i + T];
                left.children[i + T] = RelPtr::null();
            }
        }
        // Median key moves up into the parent.
        let median_key = left.keys[T - 1];
        let median_val = left.vals[T - 1];
        left.keys[T - 1] = ByteSlice::empty();
        left.count = (T - 1) as u16;

        let pc = p.count as usize;
        for i in (ci..pc).rev() {
            p.keys[i + 1] = p.keys[i];
            p.vals[i + 1] = p.vals[i];
        }
        for i in (ci + 1..=pc).rev() {
            p.children[i + 1] = p.children[i];
        }
        p.keys[ci] = median_key;
        p.vals[ci] = median_val;
        p.children[ci + 1] = right_ptr;
        p.count += 1;
    }

    unsafe fn insert_nonfull(&self, mut p: RelPtr<Node>, key: &[u8], val: u64) -> Option<u64> {
        loop {
            let n = self.node(p);
            match self.position(n, key) {
                Ok(i) => {
                    let old = n.vals[i];
                    n.vals[i] = val;
                    return Some(old);
                }
                Err(i) => {
                    if n.leaf == 1 {
                        let c = n.count as usize;
                        for j in (i..c).rev() {
                            n.keys[j + 1] = n.keys[j];
                            n.vals[j + 1] = n.vals[j];
                        }
                        n.keys[i] = self.arena.alloc_bytes(key);
                        n.vals[i] = val;
                        n.count += 1;
                        return None;
                    }
                    let child = n.children[i];
                    if self.node(child).count as usize == MAX_KEYS {
                        self.split_child(p, i);
                        // Re-examine this node: the median moved up.
                        continue;
                    }
                    p = child;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // delete (top-down, pre-emptive rebalancing)

    /// Removes `key`; returns its value if present.
    pub fn remove(&self, key: &[u8]) -> Option<u64> {
        // SAFETY: single-writer contract.
        unsafe {
            let hdr = self.arena.resolve(self.hdr);
            let root = (*hdr).root;
            let removed = self.delete(root, key);
            // Shrink the root if it became an empty internal node.
            let r = self.node((*hdr).root);
            if r.leaf == 0 && r.count == 0 {
                let old_root = (*hdr).root;
                (*hdr).root = r.children[0];
                self.arena.free(old_root);
            }
            match removed {
                Some((slice, val)) => {
                    self.arena.free_bytes(slice);
                    (*hdr).len -= 1;
                    Some(val)
                }
                None => None,
            }
        }
    }

    /// Deletes `key` from the subtree at `p`, returning ownership of the
    /// removed key slice and its value.
    unsafe fn delete(&self, p: RelPtr<Node>, key: &[u8]) -> Option<(ByteSlice, u64)> {
        let n = self.node(p);
        match self.position(n, key) {
            Ok(i) => {
                if n.leaf == 1 {
                    Some(self.remove_from_leaf(p, i))
                } else {
                    self.delete_internal_hit(p, i, key)
                }
            }
            Err(i) => {
                if n.leaf == 1 {
                    return None;
                }
                let (child, _) = self.fix_child(p, i);
                self.delete(child, key)
            }
        }
    }

    /// Removes entry `i` from leaf `p` (case 1).
    unsafe fn remove_from_leaf(&self, p: RelPtr<Node>, i: usize) -> (ByteSlice, u64) {
        let n = self.node(p);
        let slice = n.keys[i];
        let val = n.vals[i];
        let c = n.count as usize;
        for j in i..c - 1 {
            n.keys[j] = n.keys[j + 1];
            n.vals[j] = n.vals[j + 1];
        }
        n.keys[c - 1] = ByteSlice::empty();
        n.count -= 1;
        (slice, val)
    }

    /// `key` found at slot `i` of internal node `p` (case 2).
    unsafe fn delete_internal_hit(
        &self,
        p: RelPtr<Node>,
        i: usize,
        key: &[u8],
    ) -> Option<(ByteSlice, u64)> {
        let n = self.node(p);
        let left = n.children[i];
        let right = n.children[i + 1];
        if self.node(left).count as usize >= T {
            // 2a: replace with predecessor (max of the left subtree).
            let (pk, pv) = self.delete_extreme(left, true);
            let n = self.node(p);
            let old = (n.keys[i], n.vals[i]);
            n.keys[i] = pk;
            n.vals[i] = pv;
            Some(old)
        } else if self.node(right).count as usize >= T {
            // 2b: replace with successor (min of the right subtree).
            let (sk, sv) = self.delete_extreme(right, false);
            let n = self.node(p);
            let old = (n.keys[i], n.vals[i]);
            n.keys[i] = sk;
            n.vals[i] = sv;
            Some(old)
        } else {
            // 2c: merge the separator and right child into the left child,
            // then continue deleting inside the merged node.
            self.merge_children(p, i);
            self.delete(left, key)
        }
    }

    /// Removes and returns the maximum (`max = true`) or minimum entry of
    /// the subtree at `p`, rebalancing on the way down.
    unsafe fn delete_extreme(&self, mut p: RelPtr<Node>, max: bool) -> (ByteSlice, u64) {
        loop {
            let n = self.node(p);
            if n.leaf == 1 {
                let i = if max { n.count as usize - 1 } else { 0 };
                return self.remove_from_leaf(p, i);
            }
            let ci = if max { n.count as usize } else { 0 };
            let (child, _) = self.fix_child(p, ci);
            p = child;
        }
    }

    /// Ensures `children[ci]` of `p` has at least `T` keys before we
    /// descend into it, borrowing from a sibling or merging. Returns the
    /// (possibly different) child pointer and its index.
    unsafe fn fix_child(&self, p: RelPtr<Node>, ci: usize) -> (RelPtr<Node>, usize) {
        let n = self.node(p);
        let child = n.children[ci];
        if self.node(child).count as usize >= T {
            return (child, ci);
        }
        // Try borrowing from the left sibling.
        if ci > 0 && self.node(n.children[ci - 1]).count as usize >= T {
            self.rotate_right(p, ci - 1);
            return (child, ci);
        }
        // Try borrowing from the right sibling.
        if ci < n.count as usize && self.node(n.children[ci + 1]).count as usize >= T {
            self.rotate_left(p, ci);
            return (child, ci);
        }
        // Merge with a sibling.
        if ci > 0 {
            self.merge_children(p, ci - 1);
            (self.node(p).children[ci - 1], ci - 1)
        } else {
            self.merge_children(p, ci);
            (self.node(p).children[ci], ci)
        }
    }

    /// Moves the last entry of `children[si]` up to `p` slot `si` and the
    /// old separator down into the front of `children[si+1]`.
    unsafe fn rotate_right(&self, p: RelPtr<Node>, si: usize) {
        let n = self.node(p);
        let left = self.node(n.children[si]);
        let right = self.node(n.children[si + 1]);
        let rc = right.count as usize;
        for j in (0..rc).rev() {
            right.keys[j + 1] = right.keys[j];
            right.vals[j + 1] = right.vals[j];
        }
        right.keys[0] = n.keys[si];
        right.vals[0] = n.vals[si];
        if right.leaf == 0 {
            for j in (0..=rc).rev() {
                right.children[j + 1] = right.children[j];
            }
            right.children[0] = left.children[left.count as usize];
            left.children[left.count as usize] = RelPtr::null();
        }
        right.count += 1;
        let lc = left.count as usize;
        n.keys[si] = left.keys[lc - 1];
        n.vals[si] = left.vals[lc - 1];
        left.keys[lc - 1] = ByteSlice::empty();
        left.count -= 1;
    }

    /// Mirror of [`BTreeHandle::rotate_right`].
    unsafe fn rotate_left(&self, p: RelPtr<Node>, si: usize) {
        let n = self.node(p);
        let left = self.node(n.children[si]);
        let right = self.node(n.children[si + 1]);
        let lc = left.count as usize;
        left.keys[lc] = n.keys[si];
        left.vals[lc] = n.vals[si];
        if left.leaf == 0 {
            left.children[lc + 1] = right.children[0];
        }
        left.count += 1;
        n.keys[si] = right.keys[0];
        n.vals[si] = right.vals[0];
        let rc = right.count as usize;
        for j in 0..rc - 1 {
            right.keys[j] = right.keys[j + 1];
            right.vals[j] = right.vals[j + 1];
        }
        if right.leaf == 0 {
            for j in 0..rc {
                right.children[j] = right.children[j + 1];
            }
            right.children[rc] = RelPtr::null();
        }
        right.keys[rc - 1] = ByteSlice::empty();
        right.count -= 1;
    }

    /// Merges separator `si` and `children[si+1]` into `children[si]`,
    /// freeing the right node.
    unsafe fn merge_children(&self, p: RelPtr<Node>, si: usize) {
        let n = self.node(p);
        let left_ptr = n.children[si];
        let right_ptr = n.children[si + 1];
        let left = self.node(left_ptr);
        let right = self.node(right_ptr);
        let lc = left.count as usize;
        let rc = right.count as usize;
        debug_assert!(lc + rc < MAX_KEYS);

        left.keys[lc] = n.keys[si];
        left.vals[lc] = n.vals[si];
        for j in 0..rc {
            left.keys[lc + 1 + j] = right.keys[j];
            left.vals[lc + 1 + j] = right.vals[j];
        }
        if left.leaf == 0 {
            for j in 0..=rc {
                left.children[lc + 1 + j] = right.children[j];
            }
        }
        left.count = (lc + rc + 1) as u16;

        let pc = n.count as usize;
        for j in si..pc - 1 {
            n.keys[j] = n.keys[j + 1];
            n.vals[j] = n.vals[j + 1];
        }
        for j in si + 1..pc {
            n.children[j] = n.children[j + 1];
        }
        n.keys[pc - 1] = ByteSlice::empty();
        n.children[pc] = RelPtr::null();
        n.count -= 1;
        self.arena.free(right_ptr);
    }

    // ------------------------------------------------------------------
    // iteration & introspection

    /// In-order traversal; `f(key, value)` for every entry, ascending.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], u64)) {
        // SAFETY: read-only traversal.
        unsafe {
            let root = (*self.arena.resolve(self.hdr)).root;
            self.walk(root, &mut f);
        }
    }

    unsafe fn walk(&self, p: RelPtr<Node>, f: &mut impl FnMut(&[u8], u64)) {
        let n = self.node(p);
        for i in 0..n.count as usize {
            if n.leaf == 0 {
                self.walk(n.children[i], f);
            }
            f(self.key_bytes(n.keys[i]), n.vals[i]);
        }
        if n.leaf == 0 {
            self.walk(n.children[n.count as usize], f);
        }
    }

    /// Collects all entries (tests and small trees only).
    pub fn entries(&self) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.for_each(|k, v| out.push((k.to_vec(), v)));
        out
    }

    /// In-order traversal of keys in `[lo, hi)`; `f(key, value)` for each.
    /// Subtrees outside the range are pruned, so a narrow range on a large
    /// tree touches only O(log n + matches) nodes.
    pub fn for_each_range(&self, lo: &[u8], hi: Option<&[u8]>, mut f: impl FnMut(&[u8], u64)) {
        // SAFETY: read-only traversal.
        unsafe {
            let root = (*self.arena.resolve(self.hdr)).root;
            self.walk_range(root, lo, hi, &mut f);
        }
    }

    unsafe fn walk_range(
        &self,
        p: RelPtr<Node>,
        lo: &[u8],
        hi: Option<&[u8]>,
        f: &mut impl FnMut(&[u8], u64),
    ) {
        let n = self.node(p);
        let c = n.count as usize;
        // First key index ≥ lo.
        let mut start = 0;
        while start < c && self.key_bytes(n.keys[start]) < lo {
            start += 1;
        }
        for i in start..c {
            let k = self.key_bytes(n.keys[i]);
            let in_range = hi.is_none_or(|h| k < h);
            if n.leaf == 0 {
                // The child left of keys[i] may hold in-range keys even if
                // keys[i] itself is past hi.
                self.walk_range(n.children[i], lo, hi, f);
            }
            if !in_range {
                return;
            }
            f(k, n.vals[i]);
        }
        if n.leaf == 0 {
            self.walk_range(n.children[c], lo, hi, f);
        }
    }

    /// Traverses every key starting with `prefix`, ascending.
    pub fn for_each_prefix(&self, prefix: &[u8], mut f: impl FnMut(&[u8], u64)) {
        // The exclusive upper bound is prefix with its last byte bumped
        // (carrying over 0xFF bytes); an all-0xFF prefix has no bound.
        let mut hi = prefix.to_vec();
        let hi = loop {
            match hi.pop() {
                None => break None,
                Some(b) if b < 0xFF => {
                    hi.push(b + 1);
                    break Some(hi);
                }
                Some(_) => continue,
            }
        };
        self.for_each_range(prefix, hi.as_deref(), |k, v| {
            debug_assert!(k.starts_with(prefix));
            f(k, v)
        });
    }

    /// Verifies every B-tree invariant; panics with a description on
    /// violation. Used by tests and debug assertions.
    pub fn check_invariants(&self) {
        // SAFETY: read-only traversal.
        unsafe {
            let root = (*self.arena.resolve(self.hdr)).root;
            let mut count = 0u64;
            let mut depth = None;
            self.check_node(root, true, None, None, 0, &mut depth, &mut count);
            assert_eq!(
                count,
                (*self.arena.resolve(self.hdr)).len,
                "len counter disagrees with tree contents"
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    unsafe fn check_node(
        &self,
        p: RelPtr<Node>,
        is_root: bool,
        lower: Option<&[u8]>,
        upper: Option<&[u8]>,
        depth: usize,
        leaf_depth: &mut Option<usize>,
        count: &mut u64,
    ) {
        let n = self.node(p);
        let c = n.count as usize;
        assert!(c <= MAX_KEYS, "node overfull");
        if !is_root {
            assert!(c >= T - 1, "non-root node underfull: {c} keys");
        }
        *count += c as u64;
        let mut prev: Option<&[u8]> = None;
        for i in 0..c {
            let k = self.key_bytes(n.keys[i]);
            if let Some(pk) = prev {
                assert!(pk < k, "keys out of order");
            }
            if let Some(lo) = lower {
                assert!(k > lo, "key below subtree lower bound");
            }
            if let Some(hi) = upper {
                assert!(k < hi, "key above subtree upper bound");
            }
            prev = Some(k);
        }
        if n.leaf == 1 {
            match *leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) => assert_eq!(d, depth, "leaves at unequal depth"),
            }
        } else {
            for i in 0..=c {
                let lo = if i == 0 {
                    lower
                } else {
                    Some(self.key_bytes(n.keys[i - 1]))
                };
                let hi = if i == c {
                    upper
                } else {
                    Some(self.key_bytes(n.keys[i]))
                };
                assert!(!n.children[i].is_null(), "internal node with null child");
                self.check_node(n.children[i], false, lo, hi, depth + 1, leaf_depth, count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dstore_arena::DramMemory;

    fn arena() -> Arena<DramMemory> {
        Arena::create(DramMemory::new(1 << 22))
    }

    #[test]
    fn empty_tree() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        assert!(t.is_empty());
        assert_eq!(t.get(b"nope"), None);
        assert!(!t.contains(b"nope"));
        t.check_invariants();
    }

    #[test]
    fn insert_get_roundtrip() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        assert_eq!(t.insert(b"alpha", 1), None);
        assert_eq!(t.insert(b"beta", 2), None);
        assert_eq!(t.insert(b"gamma", 3), None);
        assert_eq!(t.get(b"alpha"), Some(1));
        assert_eq!(t.get(b"beta"), Some(2));
        assert_eq!(t.get(b"gamma"), Some(3));
        assert_eq!(t.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn insert_replace_returns_old() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        assert_eq!(t.insert(b"k", 1), None);
        assert_eq!(t.insert(b"k", 2), Some(1));
        assert_eq!(t.get(b"k"), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_and_ordering_with_many_keys() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        let n = 2000u64;
        for i in 0..n {
            // Shuffled-ish insertion order.
            let k = (i * 7919) % n;
            t.insert(format!("key{k:06}").as_bytes(), k);
        }
        assert_eq!(t.len(), n);
        t.check_invariants();
        let entries = t.entries();
        assert_eq!(entries.len(), n as usize);
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "iteration out of order");
        }
        for i in 0..n {
            assert_eq!(t.get(format!("key{i:06}").as_bytes()), Some(i));
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        t.insert(b"present", 1);
        assert_eq!(t.remove(b"absent"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_all_in_various_orders() {
        for &stride in &[1u64, 3, 7, 11] {
            let a = arena();
            let t = BTreeHandle::create(&a);
            let n = 500u64;
            for i in 0..n {
                t.insert(format!("k{i:05}").as_bytes(), i);
            }
            for i in 0..n {
                let k = (i * stride) % n;
                assert_eq!(
                    t.remove(format!("k{k:05}").as_bytes()),
                    Some(k),
                    "stride {stride} remove {k}"
                );
                if i % 50 == 0 {
                    t.check_invariants();
                }
            }
            assert!(t.is_empty());
            t.check_invariants();
        }
    }

    #[test]
    fn interleaved_insert_remove() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        let mut model = std::collections::BTreeMap::new();
        for i in 0u64..3000 {
            let k = format!("obj{:04}", (i * 31) % 400);
            if i % 3 == 0 {
                let got = t.remove(k.as_bytes());
                let want = model.remove(k.as_bytes());
                assert_eq!(got, want, "remove {k}");
            } else {
                let got = t.insert(k.as_bytes(), i);
                let want = model.insert(k.clone().into_bytes(), i);
                assert_eq!(got, want, "insert {k}");
            }
        }
        t.check_invariants();
        let got = t.entries();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn keys_survive_region_copy() {
        // The whole point of the arena design: copy the region, re-attach,
        // and the tree is intact at the same offsets.
        let a = arena();
        let t = BTreeHandle::create(&a);
        for i in 0..300u64 {
            t.insert(format!("copy{i:04}").as_bytes(), i);
        }
        let hdr = t.header_ptr();
        let b = arena();
        a.copy_allocated_to(&b);
        let t2 = BTreeHandle::attach(&b, hdr);
        assert_eq!(t2.len(), 300);
        t2.check_invariants();
        for i in 0..300u64 {
            assert_eq!(t2.get(format!("copy{i:04}").as_bytes()), Some(i));
        }
        // Mutating the copy does not affect the original (shadow isolation).
        t2.remove(b"copy0000");
        assert_eq!(t.get(b"copy0000"), Some(0));
        assert_eq!(t2.get(b"copy0000"), None);
    }

    #[test]
    fn binary_keys_and_empty_key() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        t.insert(b"", 0);
        t.insert(&[0u8, 1, 2], 1);
        t.insert(&[0u8, 1], 2);
        t.insert(&[255u8; 32], 3);
        assert_eq!(t.get(b""), Some(0));
        assert_eq!(t.get(&[0u8, 1, 2]), Some(1));
        assert_eq!(t.get(&[0u8, 1]), Some(2));
        assert_eq!(t.get(&[255u8; 32]), Some(3));
        t.check_invariants();
        let e = t.entries();
        assert_eq!(e[0].0, b"");
    }

    #[test]
    fn range_scans_prune_correctly() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        for i in 0..1000u64 {
            t.insert(format!("k{i:04}").as_bytes(), i);
        }
        // Closed-open range.
        let mut got = vec![];
        t.for_each_range(b"k0100", Some(b"k0110"), |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"k0100");
        assert_eq!(got[9].0, b"k0109");
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Open-ended range.
        let mut n = 0;
        t.for_each_range(b"k0990", None, |_, _| n += 1);
        assert_eq!(n, 10);
        // Empty range.
        let mut n = 0;
        t.for_each_range(b"k0500", Some(b"k0500"), |_, _| n += 1);
        assert_eq!(n, 0);
        // Full range equals full traversal.
        let mut n = 0;
        t.for_each_range(b"", None, |_, _| n += 1);
        assert_eq!(n, 1000);
    }

    #[test]
    fn prefix_scans() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        for tenant in ["alpha", "beta", "gamma"] {
            for i in 0..50u64 {
                t.insert(format!("{tenant}/obj{i:03}").as_bytes(), i);
            }
        }
        let mut got = vec![];
        t.for_each_prefix(b"beta/", |k, _| got.push(k.to_vec()));
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|k| k.starts_with(b"beta/")));
        // Prefix that bumps through 0xFF bytes.
        t.insert(&[0xFF, 0xFF, 1], 1);
        t.insert(&[0xFF, 0xFF, 2], 2);
        let mut n = 0;
        t.for_each_prefix(&[0xFF, 0xFF], |_, _| n += 1);
        assert_eq!(n, 2);
        // Empty prefix = everything.
        let mut n = 0;
        t.for_each_prefix(b"", |_, _| n += 1);
        assert_eq!(n, 152);
    }

    #[test]
    fn node_fits_512_class() {
        assert!(
            std::mem::size_of::<Node>() <= 512,
            "{}",
            std::mem::size_of::<Node>()
        );
    }
}
