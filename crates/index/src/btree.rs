//! The object-index B-tree.
//!
//! A classic B-tree (minimum degree `t = 8`) storing byte-string keys and
//! `u64` values, with every node and key allocated from an
//! [`Arena`] and linked by [`RelPtr`]s. Because the structure contains no
//! absolute pointers, it can be bulk-copied between regions (checkpoint
//! shadow copies, recovery PMEM→DRAM reconstruction) and the *same* code
//! mutates both the frontend tree and its PMEM shadow during replay.
//!
//! # Concurrency
//!
//! Two operating modes share one node layout:
//!
//! * **Exclusive** ([`BTreeHandle::get`], [`BTreeHandle::insert`],
//!   [`BTreeHandle::remove`], the `for_each*` walkers): the caller holds an
//!   external lock and the tree behaves like the original single-writer
//!   structure.
//! * **Optimistic lock coupling** (`*_olc` methods): every node's first
//!   word is a seqlock-style version/latch. Readers snapshot a node's
//!   version, read its fields with volatile loads, and re-validate the
//!   version before trusting anything (restarting from the root on
//!   conflict, with bounded [`Backoff`]). Writers latch-couple top-down:
//!   a node's version is made odd (CAS `v → v+1`) while it is being
//!   modified and bumped to `v+2` on release, so readers that overlapped a
//!   modification always fail validation.
//!
//! Three details make the optimistic protocol sound on arena memory:
//!
//! 1. **Type-stable nodes.** Freed nodes are never returned to the arena;
//!    they go on an internal per-tree free list (linked through
//!    `children[0]`) and are only ever reused as nodes. A stale reader can
//!    therefore always interpret the first word of a dangling node pointer
//!    as a version word.
//! 2. **Monotonic version clock.** The header carries a `version_clock`
//!    that is raised above a node's final version when the node is freed
//!    (`fetch_max`), and every (re)allocated node takes its fresh version
//!    from the clock. A recycled node can never re-expose a version an
//!    old reader snapped from that memory, which defeats ABA validation.
//!    While free, a node's version is `OBSOLETE` (odd), failing both
//!    validation and latch acquisition.
//! 3. **Hand-over-hand validation.** Key bytes live outside nodes and
//!    *are* recycled through the arena, so readers never trust a node's
//!    content until the parent version that produced the child pointer has
//!    been re-validated, and all byte accesses on the optimistic path are
//!    bounds-checked against the region instead of asserted.

use dstore_arena::{Arena, ArenaPod, ByteSlice, Memory, RelPtr};
use dstore_pmem::Backoff;
use std::cmp::Ordering;
use std::sync::atomic::{fence, AtomicU64, Ordering as AO};

/// Minimum degree `t`: every node except the root holds at least `t-1`
/// keys; every node holds at most `2t-1`.
const T: usize = 8;
/// Maximum keys per node.
const MAX_KEYS: usize = 2 * T - 1;
/// Maximum children per node.
const MAX_CHILDREN: usize = 2 * T;

/// Version word of a freed (pooled) node: odd, so it fails validation and
/// latch acquisition, and distinct from any live latched version because
/// the version clock never reaches it.
const OBSOLETE: u64 = u64::MAX;

/// How long a reader spins waiting for a latched node's version to settle
/// before giving up and restarting the whole operation.
const READ_SPIN_CAP: u32 = 128;
/// How long a writer spins on a held latch before restarting. Kept small:
/// on an oversubscribed core the latch holder needs our timeslice.
const LATCH_SPIN_CAP: u32 = 256;

/// Contention counters for the optimistic protocol, shared by every handle
/// attached to the same logical tree (frontend, shadow apply, replay).
#[derive(Debug, Default)]
pub struct OlcStats {
    /// Operations that had to restart from the root (failed validation,
    /// torn read, latch timeout).
    pub restarts: AtomicU64,
    /// Latch acquisitions that found the latch held and had to wait.
    pub latch_waits: AtomicU64,
}

/// Internal marker: optimistic validation failed, restart from the root.
#[derive(Debug, Clone, Copy)]
struct Conflict;

/// A B-tree node. `#[repr(C)]` and pod so it can live in an arena.
///
/// `version` MUST stay the first field: the free-node scrub in
/// `alloc_node` skips the first 8 bytes so the version word is never
/// transiently zero while stale readers may still validate against it.
#[repr(C)]
pub struct Node {
    /// Seqlock version/latch word (odd = latched or obsolete).
    version: u64,
    /// 1 if leaf, 0 if internal.
    leaf: u16,
    /// Number of keys currently stored.
    count: u16,
    _pad: u32,
    keys: [ByteSlice; MAX_KEYS],
    vals: [u64; MAX_KEYS],
    children: [RelPtr<Node>; MAX_CHILDREN],
}

// SAFETY: Node is repr(C), built from pods, zero-valid (version=0 is an
// even unlatched version; leaf=0/count=0 with null pointers is a valid
// empty internal node that is never dereferenced before initialization).
unsafe impl ArenaPod for Node {}

/// Arena-resident tree root state.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct BTreeHeader {
    root: RelPtr<Node>,
    len: u64,
    /// Seqlock version/latch word covering `root` (root swaps only).
    version: u64,
    /// Head of the internal free-node pool (linked through `children[0]`).
    free_nodes: RelPtr<Node>,
    /// Spinlock word guarding `free_nodes`.
    pool_lock: u64,
    /// Monotonic (even) clock for fresh node versions; raised above every
    /// freed node's version so recycled nodes always fail stale readers.
    version_clock: u64,
}

// SAFETY: pods only; zero means "empty tree, version 0, empty pool".
unsafe impl ArenaPod for BTreeHeader {}

/// A handle binding a tree header to the arena it lives in.
///
/// The exclusive methods require external synchronization; the `*_olc`
/// methods may run fully concurrently with each other (any mix of readers
/// and writers) but must not be mixed with exclusive mutation on the same
/// tree at the same time.
pub struct BTreeHandle<'a, M: Memory> {
    arena: &'a Arena<M>,
    hdr: RelPtr<BTreeHeader>,
}

/// Reinterprets a `u64` field as an atomic. Same trick as the replay
/// counters in `dstore-core`: the arena hands out plain pods, concurrency
/// is layered on via atomic views of the same memory.
#[inline]
unsafe fn as_atomic(p: *const u64) -> &'static AtomicU64 {
    &*(p as *const AtomicU64)
}

impl<'a, M: Memory> BTreeHandle<'a, M> {
    /// Allocates an empty tree in `arena` and returns its handle. The
    /// header offset ([`BTreeHandle::header_ptr`]) is what gets stored in
    /// DStore's directory so shadows can re-attach.
    pub fn create(arena: &'a Arena<M>) -> Self {
        let hdr: RelPtr<BTreeHeader> = arena.alloc();
        let root: RelPtr<Node> = arena.alloc();
        // SAFETY: fresh allocations, exclusively ours.
        unsafe {
            let r = &mut *arena.resolve(root);
            r.leaf = 1;
            let h = &mut *arena.resolve(hdr);
            h.root = root;
            h.len = 0;
            h.version_clock = 2;
        }
        Self { arena, hdr }
    }

    /// Re-binds a handle to an existing header (after a region copy or
    /// recovery).
    pub fn attach(arena: &'a Arena<M>, hdr: RelPtr<BTreeHeader>) -> Self {
        Self { arena, hdr }
    }

    /// The arena offset of the tree header.
    pub fn header_ptr(&self) -> RelPtr<BTreeHeader> {
        self.hdr
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        // SAFETY: header is live for the handle's lifetime; atomic view
        // because OLC writers update it without the tree lock.
        unsafe { as_atomic(&raw const (*self.arena.resolve(self.hdr)).len).load(AO::Relaxed) }
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // version-word helpers

    /// The version/latch word of node `p`.
    ///
    /// SAFETY contract: `p` must point into the region (live or pooled
    /// node — both keep a valid version word).
    unsafe fn vword(&self, p: RelPtr<Node>) -> &AtomicU64 {
        as_atomic(self.arena.resolve(p) as *const u64)
    }

    /// Waits (briefly) for an even, non-obsolete version and returns it.
    fn stable_version(vw: &AtomicU64) -> Result<u64, Conflict> {
        let mut spins = 0u32;
        loop {
            let v = vw.load(AO::Acquire);
            if v == OBSOLETE {
                return Err(Conflict);
            }
            if v & 1 == 0 {
                return Ok(v);
            }
            spins += 1;
            if spins >= READ_SPIN_CAP {
                return Err(Conflict);
            }
            std::hint::spin_loop();
        }
    }

    /// Acquires the latch on `vw` (CAS even → odd), returning the pre-latch
    /// version. Fails on an obsolete node or after a bounded spin.
    fn lock_vword(vw: &AtomicU64, stats: &OlcStats) -> Result<u64, Conflict> {
        let mut spins = 0u32;
        let mut waited = false;
        loop {
            let v = vw.load(AO::Relaxed);
            if v == OBSOLETE {
                return Err(Conflict);
            }
            if v & 1 == 0 {
                if vw
                    .compare_exchange_weak(v, v + 1, AO::Acquire, AO::Relaxed)
                    .is_ok()
                {
                    return Ok(v);
                }
            } else if !waited {
                waited = true;
                stats.latch_waits.fetch_add(1, AO::Relaxed);
            }
            spins += 1;
            if spins >= LATCH_SPIN_CAP {
                return Err(Conflict);
            }
            std::hint::spin_loop();
        }
    }

    /// Releases the latch on node `p` (odd version → next even).
    ///
    /// SAFETY contract: caller holds the latch.
    unsafe fn unlock_node(&self, p: RelPtr<Node>) {
        let vw = self.vword(p);
        debug_assert!(vw.load(AO::Relaxed) & 1 == 1, "unlocking unlatched node");
        vw.fetch_add(1, AO::Release);
    }

    /// Bounds- and alignment-checks an optimistically read node pointer.
    /// A torn or recycled pointer yields `Conflict`, never UB or a panic.
    fn try_node_ptr(&self, p: RelPtr<Node>) -> Result<*mut Node, Conflict> {
        let off = p.offset() as usize;
        if off == 0
            || !off.is_multiple_of(std::mem::align_of::<Node>())
            || off + std::mem::size_of::<Node>() > self.arena.memory().len()
        {
            return Err(Conflict);
        }
        // SAFETY: bounds just checked; the region stays mapped for 'a.
        Ok(unsafe { p.to_abs(self.arena.memory().base()) })
    }

    /// Adds `d` to the entry counter (atomic: OLC writers race on it).
    fn len_add(&self, d: i64) {
        // SAFETY: header is live for the handle's lifetime.
        unsafe {
            let l = as_atomic(&raw const (*self.arena.resolve(self.hdr)).len);
            if d >= 0 {
                l.fetch_add(d as u64, AO::Relaxed);
            } else {
                l.fetch_sub(d.unsigned_abs(), AO::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // node pool (type-stable node memory)

    /// Allocates a node, preferring the internal pool. The returned node is
    /// fully zeroed except for its version word, which is a fresh even
    /// value from the header clock (never transiently 0 on reuse).
    unsafe fn alloc_node(&self) -> RelPtr<Node> {
        let hdr = self.arena.resolve(self.hdr);
        let pool = as_atomic(&raw const (*hdr).pool_lock);
        while pool
            .compare_exchange_weak(0, 1, AO::Acquire, AO::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let head = std::ptr::read_volatile(&raw const (*hdr).free_nodes);
        let p = if head.is_null() {
            pool.store(0, AO::Release);
            self.arena.alloc::<Node>()
        } else {
            let hn = self.arena.resolve(head);
            let next = std::ptr::read_volatile(&raw const (*hn).children[0]);
            std::ptr::write_volatile(&raw mut (*hdr).free_nodes, next);
            pool.store(0, AO::Release);
            head
        };
        let np = self.arena.resolve(p);
        // Scrub everything EXCEPT the version word (first 8 bytes): stale
        // readers may still be validating against it, and 0 is a plausible
        // live version.
        std::ptr::write_bytes((np as *mut u8).add(8), 0, std::mem::size_of::<Node>() - 8);
        let clock = as_atomic(&raw const (*hdr).version_clock);
        let v = clock.fetch_add(2, AO::Relaxed);
        as_atomic(np as *const u64).store(v, AO::Release);
        p
    }

    /// Retires a node to the internal pool. Never returns node memory to
    /// the arena — that keeps node memory type-stable for stale readers.
    /// Raises the version clock above the node's final version first, so a
    /// future reuse can never re-expose a version this memory already had.
    ///
    /// SAFETY contract: node is unreachable from the tree (caller already
    /// unlinked it); caller may still hold its latch (it is consumed).
    unsafe fn free_node(&self, p: RelPtr<Node>) {
        let hdr = self.arena.resolve(self.hdr);
        let np = self.arena.resolve(p);
        let vw = as_atomic(np as *const u64);
        let v = vw.load(AO::Relaxed);
        // Next even value strictly above v (works for latched odd v too).
        as_atomic(&raw const (*hdr).version_clock).fetch_max((v | 1) + 1, AO::Relaxed);
        vw.store(OBSOLETE, AO::Release);
        let pool = as_atomic(&raw const (*hdr).pool_lock);
        while pool
            .compare_exchange_weak(0, 1, AO::Acquire, AO::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let head = std::ptr::read_volatile(&raw const (*hdr).free_nodes);
        std::ptr::write_volatile(&raw mut (*np).children[0], head);
        std::ptr::write_volatile(&raw mut (*hdr).free_nodes, p);
        pool.store(0, AO::Release);
    }

    // ------------------------------------------------------------------
    // shared helpers

    /// Raw node access.
    ///
    /// SAFETY contract: `p` must be a live node; caller must not create
    /// overlapping `&mut` to the same node.
    #[allow(clippy::mut_from_ref)]
    unsafe fn node(&self, p: RelPtr<Node>) -> &mut Node {
        &mut *self.arena.resolve(p)
    }

    unsafe fn key_bytes(&self, s: ByteSlice) -> &[u8] {
        self.arena.bytes(s)
    }

    /// Compares a stored key with a probe key.
    unsafe fn cmp(&self, stored: ByteSlice, probe: &[u8]) -> Ordering {
        self.key_bytes(stored).cmp(probe)
    }

    /// Position of `key` in `node`: `Ok(i)` exact match at `i`, `Err(i)`
    /// the child index to descend into.
    unsafe fn position(&self, n: &Node, key: &[u8]) -> Result<usize, usize> {
        // Nodes hold at most 15 keys; linear scan beats binary search here.
        for i in 0..n.count as usize {
            match self.cmp(n.keys[i], key) {
                Ordering::Equal => return Ok(i),
                Ordering::Greater => return Err(i),
                Ordering::Less => {}
            }
        }
        Err(n.count as usize)
    }

    /// Optimistic key compare: every byte is read volatile and
    /// bounds-checked, because the slice header may be torn or the key
    /// bytes already recycled. A bad slice is a `Conflict`, not a panic.
    fn cmp_olc(&self, stored: ByteSlice, probe: &[u8]) -> Result<Ordering, Conflict> {
        let len = stored.len as usize;
        if len == 0 {
            return Ok((&[] as &[u8]).cmp(probe));
        }
        let off = stored.ptr.offset() as usize;
        let mem = self.arena.memory();
        if off == 0 || len > mem.len() || off > mem.len() - len {
            return Err(Conflict);
        }
        let base = mem.base();
        let common = len.min(probe.len());
        for (i, &pb) in probe.iter().enumerate().take(common) {
            // SAFETY: bounds checked above; region stays mapped.
            let b = unsafe { std::ptr::read_volatile(base.add(off + i)) };
            match b.cmp(&pb) {
                Ordering::Equal => {}
                o => return Ok(o),
            }
        }
        Ok(len.cmp(&probe.len()))
    }

    // ------------------------------------------------------------------
    // exclusive lookup

    /// Returns the value stored for `key` (exclusive mode).
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        // SAFETY: read-only traversal of live nodes.
        unsafe {
            let mut p = (*self.arena.resolve(self.hdr)).root;
            loop {
                let n = self.node(p);
                match self.position(n, key) {
                    Ok(i) => return Some(n.vals[i]),
                    Err(i) => {
                        if n.leaf == 1 {
                            return None;
                        }
                        p = n.children[i];
                    }
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    // ------------------------------------------------------------------
    // exclusive insert

    /// Inserts `key → val`; returns the previous value if the key existed.
    pub fn insert(&self, key: &[u8], val: u64) -> Option<u64> {
        // SAFETY: single-writer contract; distinct nodes only.
        unsafe {
            let hdr = self.arena.resolve(self.hdr);
            let root = (*hdr).root;
            if self.node(root).count as usize == MAX_KEYS {
                // Grow the tree: new root with old root as child 0.
                let new_root = self.alloc_node();
                {
                    let nr = self.node(new_root);
                    nr.leaf = 0;
                    nr.count = 0;
                    nr.children[0] = root;
                }
                self.split_child(new_root, 0);
                (*hdr).root = new_root;
            }
            let prev = self.insert_nonfull((*hdr).root, key, val);
            if prev.is_none() {
                self.len_add(1);
            }
            prev
        }
    }

    /// Splits the full child `ci` of `parent` (which must not be full).
    unsafe fn split_child(&self, parent: RelPtr<Node>, ci: usize) {
        let left_ptr = self.node(parent).children[ci];
        let right_ptr = self.alloc_node();
        let p = self.node(parent);
        let left = self.node(left_ptr);
        let right = self.node(right_ptr);
        debug_assert_eq!(left.count as usize, MAX_KEYS);

        right.leaf = left.leaf;
        right.count = (T - 1) as u16;
        // Upper T-1 keys move to the new right node.
        for i in 0..T - 1 {
            right.keys[i] = left.keys[i + T];
            right.vals[i] = left.vals[i + T];
            left.keys[i + T] = ByteSlice::empty();
        }
        if left.leaf == 0 {
            for i in 0..T {
                right.children[i] = left.children[i + T];
                left.children[i + T] = RelPtr::null();
            }
        }
        // Median key moves up into the parent.
        let median_key = left.keys[T - 1];
        let median_val = left.vals[T - 1];
        left.keys[T - 1] = ByteSlice::empty();
        left.count = (T - 1) as u16;

        let pc = p.count as usize;
        for i in (ci..pc).rev() {
            p.keys[i + 1] = p.keys[i];
            p.vals[i + 1] = p.vals[i];
        }
        for i in (ci + 1..=pc).rev() {
            p.children[i + 1] = p.children[i];
        }
        p.keys[ci] = median_key;
        p.vals[ci] = median_val;
        p.children[ci + 1] = right_ptr;
        p.count += 1;
    }

    unsafe fn insert_nonfull(&self, mut p: RelPtr<Node>, key: &[u8], val: u64) -> Option<u64> {
        loop {
            let n = self.node(p);
            match self.position(n, key) {
                Ok(i) => {
                    let old = n.vals[i];
                    n.vals[i] = val;
                    return Some(old);
                }
                Err(i) => {
                    if n.leaf == 1 {
                        let c = n.count as usize;
                        for j in (i..c).rev() {
                            n.keys[j + 1] = n.keys[j];
                            n.vals[j + 1] = n.vals[j];
                        }
                        n.keys[i] = self.arena.alloc_bytes(key);
                        n.vals[i] = val;
                        n.count += 1;
                        return None;
                    }
                    let child = n.children[i];
                    if self.node(child).count as usize == MAX_KEYS {
                        self.split_child(p, i);
                        // Re-examine this node: the median moved up.
                        continue;
                    }
                    p = child;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // exclusive delete (top-down, pre-emptive rebalancing)

    /// Removes `key`; returns its value if present.
    pub fn remove(&self, key: &[u8]) -> Option<u64> {
        // SAFETY: single-writer contract.
        unsafe {
            let hdr = self.arena.resolve(self.hdr);
            let root = (*hdr).root;
            let removed = self.delete(root, key);
            // Shrink the root if it became an empty internal node.
            let r = self.node((*hdr).root);
            if r.leaf == 0 && r.count == 0 {
                let old_root = (*hdr).root;
                (*hdr).root = r.children[0];
                self.free_node(old_root);
            }
            match removed {
                Some((slice, val)) => {
                    self.arena.free_bytes(slice);
                    self.len_add(-1);
                    Some(val)
                }
                None => None,
            }
        }
    }

    /// Deletes `key` from the subtree at `p`, returning ownership of the
    /// removed key slice and its value.
    unsafe fn delete(&self, p: RelPtr<Node>, key: &[u8]) -> Option<(ByteSlice, u64)> {
        let n = self.node(p);
        match self.position(n, key) {
            Ok(i) => {
                if n.leaf == 1 {
                    Some(self.remove_from_leaf(p, i))
                } else {
                    self.delete_internal_hit(p, i, key)
                }
            }
            Err(i) => {
                if n.leaf == 1 {
                    return None;
                }
                let (child, _) = self.fix_child(p, i);
                self.delete(child, key)
            }
        }
    }

    /// Removes entry `i` from leaf `p` (case 1).
    unsafe fn remove_from_leaf(&self, p: RelPtr<Node>, i: usize) -> (ByteSlice, u64) {
        let n = self.node(p);
        let slice = n.keys[i];
        let val = n.vals[i];
        let c = n.count as usize;
        for j in i..c - 1 {
            n.keys[j] = n.keys[j + 1];
            n.vals[j] = n.vals[j + 1];
        }
        n.keys[c - 1] = ByteSlice::empty();
        n.count -= 1;
        (slice, val)
    }

    /// `key` found at slot `i` of internal node `p` (case 2).
    unsafe fn delete_internal_hit(
        &self,
        p: RelPtr<Node>,
        i: usize,
        key: &[u8],
    ) -> Option<(ByteSlice, u64)> {
        let n = self.node(p);
        let left = n.children[i];
        let right = n.children[i + 1];
        if self.node(left).count as usize >= T {
            // 2a: replace with predecessor (max of the left subtree).
            let (pk, pv) = self.delete_extreme(left, true);
            let n = self.node(p);
            let old = (n.keys[i], n.vals[i]);
            n.keys[i] = pk;
            n.vals[i] = pv;
            Some(old)
        } else if self.node(right).count as usize >= T {
            // 2b: replace with successor (min of the right subtree).
            let (sk, sv) = self.delete_extreme(right, false);
            let n = self.node(p);
            let old = (n.keys[i], n.vals[i]);
            n.keys[i] = sk;
            n.vals[i] = sv;
            Some(old)
        } else {
            // 2c: merge the separator and right child into the left child,
            // then continue deleting inside the merged node.
            self.merge_children(p, i);
            self.delete(left, key)
        }
    }

    /// Removes and returns the maximum (`max = true`) or minimum entry of
    /// the subtree at `p`, rebalancing on the way down.
    unsafe fn delete_extreme(&self, mut p: RelPtr<Node>, max: bool) -> (ByteSlice, u64) {
        loop {
            let n = self.node(p);
            if n.leaf == 1 {
                let i = if max { n.count as usize - 1 } else { 0 };
                return self.remove_from_leaf(p, i);
            }
            let ci = if max { n.count as usize } else { 0 };
            let (child, _) = self.fix_child(p, ci);
            p = child;
        }
    }

    /// Ensures `children[ci]` of `p` has at least `T` keys before we
    /// descend into it, borrowing from a sibling or merging. Returns the
    /// (possibly different) child pointer and its index.
    unsafe fn fix_child(&self, p: RelPtr<Node>, ci: usize) -> (RelPtr<Node>, usize) {
        let n = self.node(p);
        let child = n.children[ci];
        if self.node(child).count as usize >= T {
            return (child, ci);
        }
        // Try borrowing from the left sibling.
        if ci > 0 && self.node(n.children[ci - 1]).count as usize >= T {
            self.rotate_right(p, ci - 1);
            return (child, ci);
        }
        // Try borrowing from the right sibling.
        if ci < n.count as usize && self.node(n.children[ci + 1]).count as usize >= T {
            self.rotate_left(p, ci);
            return (child, ci);
        }
        // Merge with a sibling.
        if ci > 0 {
            self.merge_children(p, ci - 1);
            (self.node(p).children[ci - 1], ci - 1)
        } else {
            self.merge_children(p, ci);
            (self.node(p).children[ci], ci)
        }
    }

    /// Moves the last entry of `children[si]` up to `p` slot `si` and the
    /// old separator down into the front of `children[si+1]`.
    unsafe fn rotate_right(&self, p: RelPtr<Node>, si: usize) {
        let n = self.node(p);
        let left = self.node(n.children[si]);
        let right = self.node(n.children[si + 1]);
        let rc = right.count as usize;
        for j in (0..rc).rev() {
            right.keys[j + 1] = right.keys[j];
            right.vals[j + 1] = right.vals[j];
        }
        right.keys[0] = n.keys[si];
        right.vals[0] = n.vals[si];
        if right.leaf == 0 {
            for j in (0..=rc).rev() {
                right.children[j + 1] = right.children[j];
            }
            right.children[0] = left.children[left.count as usize];
            left.children[left.count as usize] = RelPtr::null();
        }
        right.count += 1;
        let lc = left.count as usize;
        n.keys[si] = left.keys[lc - 1];
        n.vals[si] = left.vals[lc - 1];
        left.keys[lc - 1] = ByteSlice::empty();
        left.count -= 1;
    }

    /// Mirror of [`BTreeHandle::rotate_right`].
    unsafe fn rotate_left(&self, p: RelPtr<Node>, si: usize) {
        let n = self.node(p);
        let left = self.node(n.children[si]);
        let right = self.node(n.children[si + 1]);
        let lc = left.count as usize;
        left.keys[lc] = n.keys[si];
        left.vals[lc] = n.vals[si];
        if left.leaf == 0 {
            left.children[lc + 1] = right.children[0];
        }
        left.count += 1;
        n.keys[si] = right.keys[0];
        n.vals[si] = right.vals[0];
        let rc = right.count as usize;
        for j in 0..rc - 1 {
            right.keys[j] = right.keys[j + 1];
            right.vals[j] = right.vals[j + 1];
        }
        if right.leaf == 0 {
            for j in 0..rc {
                right.children[j] = right.children[j + 1];
            }
            right.children[rc] = RelPtr::null();
        }
        right.keys[rc - 1] = ByteSlice::empty();
        right.count -= 1;
    }

    /// Merges separator `si` and `children[si+1]` into `children[si]`,
    /// retiring the right node to the pool.
    unsafe fn merge_children(&self, p: RelPtr<Node>, si: usize) {
        let n = self.node(p);
        let left_ptr = n.children[si];
        let right_ptr = n.children[si + 1];
        let left = self.node(left_ptr);
        let right = self.node(right_ptr);
        let lc = left.count as usize;
        let rc = right.count as usize;
        debug_assert!(lc + rc < MAX_KEYS);

        left.keys[lc] = n.keys[si];
        left.vals[lc] = n.vals[si];
        for j in 0..rc {
            left.keys[lc + 1 + j] = right.keys[j];
            left.vals[lc + 1 + j] = right.vals[j];
        }
        if left.leaf == 0 {
            for j in 0..=rc {
                left.children[lc + 1 + j] = right.children[j];
            }
        }
        left.count = (lc + rc + 1) as u16;

        let pc = n.count as usize;
        for j in si..pc - 1 {
            n.keys[j] = n.keys[j + 1];
            n.vals[j] = n.vals[j + 1];
        }
        for j in si + 1..pc {
            n.children[j] = n.children[j + 1];
        }
        n.keys[pc - 1] = ByteSlice::empty();
        n.children[pc] = RelPtr::null();
        n.count -= 1;
        self.free_node(right_ptr);
    }

    // ------------------------------------------------------------------
    // optimistic lookup

    /// Returns the value stored for `key` without taking any lock.
    ///
    /// Safe to run concurrently with `*_olc` writers; restarts internally
    /// on conflict (counted in `stats.restarts`).
    pub fn get_olc(&self, key: &[u8], stats: &OlcStats) -> Option<u64> {
        let mut bo = Backoff::new();
        loop {
            match self.try_get_olc(key) {
                Ok(r) => return r,
                Err(Conflict) => {
                    stats.restarts.fetch_add(1, AO::Relaxed);
                    bo.snooze();
                }
            }
        }
    }

    /// Whether `key` is present (optimistic).
    pub fn contains_olc(&self, key: &[u8], stats: &OlcStats) -> bool {
        self.get_olc(key, stats).is_some()
    }

    /// One optimistic descent. Every load is volatile, every pointer and
    /// slice is bounds-checked, and each node's version is validated after
    /// its fields (and the parent's version after reading the child
    /// pointer, hand-over-hand) before anything is trusted.
    fn try_get_olc(&self, key: &[u8]) -> Result<Option<u64>, Conflict> {
        // SAFETY: all raw reads are bounds-checked against the region and
        // never trusted until the covering version validates.
        unsafe {
            let hdr = self.arena.resolve(self.hdr);
            let hvw = as_atomic(&raw const (*hdr).version);
            let mut pv = Self::stable_version(hvw)?;
            let mut pvw = hvw;
            let mut p = std::ptr::read_volatile(&raw const (*hdr).root);
            loop {
                let np = self.try_node_ptr(p)?;
                let nvw = as_atomic(np as *const u64);
                let nv = Self::stable_version(nvw)?;
                // The child pointer we followed is only meaningful if the
                // parent did not change under us.
                if pvw.load(AO::Acquire) != pv {
                    return Err(Conflict);
                }
                let leaf = std::ptr::read_volatile(&raw const (*np).leaf);
                let count = std::ptr::read_volatile(&raw const (*np).count) as usize;
                if count > MAX_KEYS {
                    return Err(Conflict);
                }
                // Linear position scan with torn-read-safe compares.
                let mut descend = count;
                let mut hit: Option<u64> = None;
                for i in 0..count {
                    let ks = std::ptr::read_volatile(&raw const (*np).keys[i]);
                    match self.cmp_olc(ks, key)? {
                        Ordering::Equal => {
                            hit = Some(std::ptr::read_volatile(&raw const (*np).vals[i]));
                            break;
                        }
                        Ordering::Greater => {
                            descend = i;
                            break;
                        }
                        Ordering::Less => {}
                    }
                }
                let child = std::ptr::read_volatile(&raw const (*np).children[descend]);
                // Validate everything read from this node.
                fence(AO::Acquire);
                if nvw.load(AO::Acquire) != nv {
                    return Err(Conflict);
                }
                if let Some(v) = hit {
                    return Ok(Some(v));
                }
                if leaf == 1 {
                    return Ok(None);
                }
                p = child;
                pvw = nvw;
                pv = nv;
            }
        }
    }

    // ------------------------------------------------------------------
    // optimistic insert / remove (lock coupling)

    /// Inserts `key → val` holding only per-node latches; returns the
    /// previous value if the key existed.
    pub fn insert_olc(&self, key: &[u8], val: u64, stats: &OlcStats) -> Option<u64> {
        let mut bo = Backoff::new();
        loop {
            // SAFETY: latches acquired top-down; see try_insert_olc.
            match unsafe { self.try_insert_olc(key, val, stats) } {
                Ok(prev) => {
                    if prev.is_none() {
                        self.len_add(1);
                    }
                    return prev;
                }
                Err(Conflict) => {
                    stats.restarts.fetch_add(1, AO::Relaxed);
                    bo.snooze();
                }
            }
        }
    }

    /// Removes `key` holding only per-node latches; returns its value if
    /// present.
    pub fn remove_olc(&self, key: &[u8], stats: &OlcStats) -> Option<u64> {
        let mut bo = Backoff::new();
        loop {
            // SAFETY: latches acquired top-down; see try_remove_olc.
            match unsafe { self.try_remove_olc(key, stats) } {
                Ok(Some((slice, val))) => {
                    self.arena.free_bytes(slice);
                    self.len_add(-1);
                    return Some(val);
                }
                Ok(None) => return None,
                Err(Conflict) => {
                    stats.restarts.fetch_add(1, AO::Relaxed);
                    bo.snooze();
                }
            }
        }
    }

    /// Latches the root node, handling a concurrent root swap: read the
    /// root pointer, latch it, then re-check the pointer (the swap happens
    /// under the old root's latch, so a stale latch always detects it).
    unsafe fn latch_root(&self, stats: &OlcStats) -> Result<RelPtr<Node>, Conflict> {
        let hdr = self.arena.resolve(self.hdr);
        let p = std::ptr::read_volatile(&raw const (*hdr).root);
        let np = self.try_node_ptr(p)?;
        let vw = as_atomic(np as *const u64);
        Self::lock_vword(vw, stats)?;
        let p2 = std::ptr::read_volatile(&raw const (*hdr).root);
        if p2.offset() != p.offset() {
            self.unlock_node(p);
            return Err(Conflict);
        }
        Ok(p)
    }

    /// Latches node `p` (a child reached under its parent's latch).
    unsafe fn latch_node(&self, p: RelPtr<Node>, stats: &OlcStats) -> Result<(), Conflict> {
        Self::lock_vword(self.vword(p), stats).map(|_| ())
    }

    /// Publishes a new root: latch the header version word, swap the
    /// pointer, release. Caller holds the old root's latch, which makes
    /// the header latch effectively uncontended (all root swaps happen
    /// under the old root's latch).
    unsafe fn publish_root(&self, new_root: RelPtr<Node>, stats: &OlcStats) {
        let hdr = self.arena.resolve(self.hdr);
        let hvw = as_atomic(&raw const (*hdr).version);
        while Self::lock_vword(hvw, stats).is_err() {
            std::hint::spin_loop();
        }
        std::ptr::write_volatile(&raw mut (*hdr).root, new_root);
        hvw.fetch_add(1, AO::Release);
    }

    unsafe fn try_insert_olc(
        &self,
        key: &[u8],
        val: u64,
        stats: &OlcStats,
    ) -> Result<Option<u64>, Conflict> {
        let mut cur = self.latch_root(stats)?;
        // Grow the tree if the root is full: split into a fresh root while
        // both old root (latched) and new root (unpublished) are ours.
        if self.node(cur).count as usize == MAX_KEYS {
            let new_root = self.alloc_node();
            {
                let nr = self.node(new_root);
                nr.leaf = 0;
                nr.count = 0;
                nr.children[0] = cur;
            }
            // Latch the new root pre-publication (always succeeds: the
            // node is private). Keeps the "cur is latched" invariant after
            // the swap.
            self.latch_node(new_root, stats)?;
            self.split_child(new_root, 0);
            self.publish_root(new_root, stats);
            self.unlock_node(cur);
            cur = new_root;
        }
        // Invariant: cur is latched and not full.
        loop {
            let n = self.node(cur);
            match self.position(n, key) {
                Ok(i) => {
                    let old = n.vals[i];
                    n.vals[i] = val;
                    self.unlock_node(cur);
                    return Ok(Some(old));
                }
                Err(i) => {
                    if n.leaf == 1 {
                        let c = n.count as usize;
                        for j in (i..c).rev() {
                            n.keys[j + 1] = n.keys[j];
                            n.vals[j + 1] = n.vals[j];
                        }
                        n.keys[i] = self.arena.alloc_bytes(key);
                        n.vals[i] = val;
                        n.count += 1;
                        self.unlock_node(cur);
                        return Ok(None);
                    }
                    let child = n.children[i];
                    if let Err(e) = self.latch_node(child, stats) {
                        self.unlock_node(cur);
                        return Err(e);
                    }
                    if self.node(child).count as usize == MAX_KEYS {
                        // Split under both latches; the new right sibling
                        // is only reachable through latched `cur`.
                        self.split_child(cur, i);
                        match self.cmp(self.node(cur).keys[i], key) {
                            Ordering::Equal => {
                                let n = self.node(cur);
                                let old = n.vals[i];
                                n.vals[i] = val;
                                self.unlock_node(child);
                                self.unlock_node(cur);
                                return Ok(Some(old));
                            }
                            Ordering::Greater => {
                                // key < median: continue into the left
                                // child, which stays `child`.
                                self.unlock_node(cur);
                                cur = child;
                            }
                            Ordering::Less => {
                                let right = self.node(cur).children[i + 1];
                                // Fresh node, only reachable via latched
                                // cur: latch cannot fail meaningfully.
                                if let Err(e) = self.latch_node(right, stats) {
                                    self.unlock_node(child);
                                    self.unlock_node(cur);
                                    return Err(e);
                                }
                                self.unlock_node(child);
                                self.unlock_node(cur);
                                cur = right;
                            }
                        }
                    } else {
                        self.unlock_node(cur);
                        cur = child;
                    }
                }
            }
        }
    }

    unsafe fn try_remove_olc(
        &self,
        key: &[u8],
        stats: &OlcStats,
    ) -> Result<Option<(ByteSlice, u64)>, Conflict> {
        let mut cur = self.latch_root(stats)?;
        let mut is_root = true;
        // Invariant: cur is latched, and (unless it is the root) holds at
        // least T keys, so removals below never need to touch above it.
        loop {
            let n = self.node(cur);
            match self.position(n, key) {
                Err(i) => {
                    if n.leaf == 1 {
                        self.unlock_node(cur);
                        return Ok(None);
                    }
                    let (child, _) = match self.fix_child_olc(cur, i, stats) {
                        Ok(x) => x,
                        Err(e) => {
                            self.unlock_node(cur);
                            return Err(e);
                        }
                    };
                    self.descend_unlock(&mut cur, &mut is_root, child, stats);
                }
                Ok(i) => {
                    if n.leaf == 1 {
                        let out = self.remove_from_leaf(cur, i);
                        self.unlock_node(cur);
                        return Ok(Some(out));
                    }
                    // Internal hit: swap in the predecessor or successor,
                    // keeping the WHOLE extreme-descent path latched so the
                    // separator replacement and the leaf removal are one
                    // atomic restructure from a reader's point of view.
                    let left = n.children[i];
                    let right = n.children[i + 1];
                    if let Err(e) = self.latch_node(left, stats) {
                        self.unlock_node(cur);
                        return Err(e);
                    }
                    if self.node(left).count as usize >= T {
                        return self.swap_separator(cur, i, left, true, stats);
                    }
                    if let Err(e) = self.latch_node(right, stats) {
                        self.unlock_node(left);
                        self.unlock_node(cur);
                        return Err(e);
                    }
                    if self.node(right).count as usize >= T {
                        self.unlock_node(left);
                        return self.swap_separator(cur, i, right, false, stats);
                    }
                    // 2c: both children minimal — merge them around the
                    // separator (consumes right's latch) and keep deleting
                    // inside the merged node.
                    self.merge_children(cur, i);
                    self.descend_unlock(&mut cur, &mut is_root, left, stats);
                }
            }
        }
    }

    /// Moves the latched descent from `cur` to `child`, shrinking the root
    /// first when a merge just emptied it. Consumes `cur`'s latch.
    unsafe fn descend_unlock(
        &self,
        cur: &mut RelPtr<Node>,
        is_root: &mut bool,
        child: RelPtr<Node>,
        stats: &OlcStats,
    ) {
        let n = self.node(*cur);
        if *is_root && n.leaf == 0 && n.count == 0 {
            // The merge left an empty internal root whose only child is
            // `child`: publish the child as the new root and retire the
            // old one (free_node consumes its latch).
            self.publish_root(child, stats);
            self.free_node(*cur);
        } else {
            self.unlock_node(*cur);
        }
        *cur = child;
        *is_root = false;
    }

    /// Case 2a/2b of the internal-hit delete: removes the extreme entry of
    /// the latched subtree `sub` (predecessor if `max`, else successor)
    /// with the full path latched, then swaps it into separator slot `i`
    /// of `cur`. Unlocks everything and returns the removed separator.
    unsafe fn swap_separator(
        &self,
        cur: RelPtr<Node>,
        i: usize,
        sub: RelPtr<Node>,
        max: bool,
        stats: &OlcStats,
    ) -> Result<Option<(ByteSlice, u64)>, Conflict> {
        let mut held: Vec<RelPtr<Node>> = Vec::new();
        match self.delete_extreme_olc(sub, max, &mut held, stats) {
            Ok((k, v)) => {
                let n = self.node(cur);
                let old = (n.keys[i], n.vals[i]);
                n.keys[i] = k;
                n.vals[i] = v;
                for &h in held.iter().rev() {
                    self.unlock_node(h);
                }
                self.unlock_node(cur);
                Ok(Some(old))
            }
            Err(e) => {
                for &h in held.iter().rev() {
                    self.unlock_node(h);
                }
                self.unlock_node(cur);
                Err(e)
            }
        }
    }

    /// Latched-path version of [`BTreeHandle::delete_extreme`]: every node
    /// on the way down is pushed to `held` and stays latched until the
    /// caller has swapped the separator. `start` must already be latched
    /// and hold at least `T` keys.
    unsafe fn delete_extreme_olc(
        &self,
        start: RelPtr<Node>,
        max: bool,
        held: &mut Vec<RelPtr<Node>>,
        stats: &OlcStats,
    ) -> Result<(ByteSlice, u64), Conflict> {
        let mut p = start;
        held.push(p);
        loop {
            let n = self.node(p);
            if n.leaf == 1 {
                let i = if max { n.count as usize - 1 } else { 0 };
                return Ok(self.remove_from_leaf(p, i));
            }
            let ci = if max { n.count as usize } else { 0 };
            let (child, _) = self.fix_child_olc(p, ci, stats)?;
            held.push(child);
            p = child;
        }
    }

    /// Latch-coupled version of [`BTreeHandle::fix_child`]: latches
    /// `children[ci]` of latched `p` and rebalances it to at least `T`
    /// keys (borrow from a sibling, else merge). Returns the latched child
    /// to descend into and its index; merged-away nodes are retired with
    /// their latch consumed. On `Err` no new latches remain held.
    unsafe fn fix_child_olc(
        &self,
        p: RelPtr<Node>,
        ci: usize,
        stats: &OlcStats,
    ) -> Result<(RelPtr<Node>, usize), Conflict> {
        let n = self.node(p);
        let child = n.children[ci];
        self.latch_node(child, stats)?;
        if self.node(child).count as usize >= T {
            return Ok((child, ci));
        }
        // Sibling latches are taken while holding the parent latch, so the
        // only contention is a writer already below us — strictly bounded.
        if ci > 0 {
            let left = n.children[ci - 1];
            if let Err(e) = self.latch_node(left, stats) {
                self.unlock_node(child);
                return Err(e);
            }
            if self.node(left).count as usize >= T {
                self.rotate_right(p, ci - 1);
                self.unlock_node(left);
                return Ok((child, ci));
            }
            if ci < n.count as usize {
                let right = n.children[ci + 1];
                if let Err(e) = self.latch_node(right, stats) {
                    self.unlock_node(left);
                    self.unlock_node(child);
                    return Err(e);
                }
                if self.node(right).count as usize >= T {
                    self.rotate_left(p, ci);
                    self.unlock_node(right);
                    self.unlock_node(left);
                    return Ok((child, ci));
                }
                self.unlock_node(right);
            }
            // Merge child into its left sibling (frees child, consuming
            // its latch); continue into the survivor.
            self.merge_children(p, ci - 1);
            Ok((left, ci - 1))
        } else {
            let right = n.children[ci + 1];
            if let Err(e) = self.latch_node(right, stats) {
                self.unlock_node(child);
                return Err(e);
            }
            if self.node(right).count as usize >= T {
                self.rotate_left(p, ci);
                self.unlock_node(right);
                return Ok((child, ci));
            }
            // Merge right sibling into child (frees right, consuming its
            // latch).
            self.merge_children(p, ci);
            Ok((child, ci))
        }
    }

    // ------------------------------------------------------------------
    // optimistic scans

    /// Collects all entries in `[lo, hi)` without taking any lock. The
    /// result is a hand-over-hand-consistent snapshot (each node read
    /// atomically, child reads validated against the parent); the scan
    /// restarts from scratch on conflict so no duplicates are emitted.
    pub fn collect_range_olc(
        &self,
        lo: &[u8],
        hi: Option<&[u8]>,
        stats: &OlcStats,
    ) -> Vec<(Vec<u8>, u64)> {
        let mut bo = Backoff::new();
        loop {
            let mut out = Vec::new();
            // SAFETY: every read bounds-checked and version-validated.
            let r = unsafe {
                let hdr = self.arena.resolve(self.hdr);
                let hvw = as_atomic(&raw const (*hdr).version);
                match Self::stable_version(hvw) {
                    Ok(hv) => {
                        let root = std::ptr::read_volatile(&raw const (*hdr).root);
                        self.walk_range_olc(root, hvw, hv, lo, hi, 0, &mut out)
                    }
                    Err(e) => Err(e),
                }
            };
            match r {
                Ok(()) => return out,
                Err(Conflict) => {
                    stats.restarts.fetch_add(1, AO::Relaxed);
                    bo.snooze();
                }
            }
        }
    }

    /// Collects every entry whose key starts with `prefix` (optimistic).
    pub fn collect_prefix_olc(&self, prefix: &[u8], stats: &OlcStats) -> Vec<(Vec<u8>, u64)> {
        let hi = prefix_upper_bound(prefix);
        self.collect_range_olc(prefix, hi.as_deref(), stats)
    }

    /// Collects all entries (optimistic).
    pub fn entries_olc(&self, stats: &OlcStats) -> Vec<(Vec<u8>, u64)> {
        self.collect_range_olc(b"", None, stats)
    }

    /// Takes an owned, validated snapshot of one node: version, fields and
    /// key bytes all copied out before the version check confirms nothing
    /// moved. The parent's version is re-validated first so the child
    /// pointer that led here is known-good (hand-over-hand).
    unsafe fn snap_node(
        &self,
        p: RelPtr<Node>,
        pvw: &AtomicU64,
        pv: u64,
        snap: &mut NodeSnap,
    ) -> Result<&AtomicU64, Conflict> {
        let np = self.try_node_ptr(p)?;
        let nvw = as_atomic(np as *const u64);
        let nv = Self::stable_version(nvw)?;
        if pvw.load(AO::Acquire) != pv {
            return Err(Conflict);
        }
        let count = std::ptr::read_volatile(&raw const (*np).count) as usize;
        if count > MAX_KEYS {
            return Err(Conflict);
        }
        snap.version = nv;
        snap.leaf = std::ptr::read_volatile(&raw const (*np).leaf) == 1;
        snap.keys.clear();
        snap.vals.clear();
        snap.children.clear();
        let mem = self.arena.memory();
        for i in 0..count {
            let ks = std::ptr::read_volatile(&raw const (*np).keys[i]);
            let len = ks.len as usize;
            let off = ks.ptr.offset() as usize;
            let mut key = Vec::new();
            if len > 0 {
                // Bounds-check BEFORE reserving: a torn length could be
                // gigabytes.
                if off == 0 || len > mem.len() || off > mem.len() - len {
                    return Err(Conflict);
                }
                key.reserve_exact(len);
                for b in 0..len {
                    key.push(std::ptr::read_volatile(mem.base().add(off + b)));
                }
            }
            snap.keys.push(key);
            snap.vals
                .push(std::ptr::read_volatile(&raw const (*np).vals[i]));
        }
        if !snap.leaf {
            for i in 0..=count {
                snap.children
                    .push(std::ptr::read_volatile(&raw const (*np).children[i]));
            }
        }
        fence(AO::Acquire);
        if nvw.load(AO::Acquire) != nv {
            return Err(Conflict);
        }
        Ok(nvw)
    }

    /// Range walk over validated node snapshots, pruning like
    /// [`BTreeHandle::for_each_range`]. `Err` aborts the whole scan (the
    /// caller clears and retries).
    #[allow(clippy::too_many_arguments)]
    unsafe fn walk_range_olc(
        &self,
        p: RelPtr<Node>,
        pvw: &AtomicU64,
        pv: u64,
        lo: &[u8],
        hi: Option<&[u8]>,
        depth: usize,
        out: &mut Vec<(Vec<u8>, u64)>,
    ) -> Result<(), Conflict> {
        if depth > 64 {
            // A torn pointer chain could loop; depth-bound it (a real tree
            // of degree 8 never gets remotely this deep).
            return Err(Conflict);
        }
        let mut snap = NodeSnap::default();
        let nvw = self.snap_node(p, pvw, pv, &mut snap)?;
        let c = snap.keys.len();
        let mut start = 0;
        while start < c && snap.keys[start].as_slice() < lo {
            start += 1;
        }
        for i in start..c {
            let in_range = hi.is_none_or(|h| snap.keys[i].as_slice() < h);
            if !snap.leaf {
                self.walk_range_olc(snap.children[i], nvw, snap.version, lo, hi, depth + 1, out)?;
            }
            if !in_range {
                return Ok(());
            }
            out.push((std::mem::take(&mut snap.keys[i]), snap.vals[i]));
        }
        if !snap.leaf {
            self.walk_range_olc(snap.children[c], nvw, snap.version, lo, hi, depth + 1, out)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // iteration & introspection (exclusive)

    /// In-order traversal; `f(key, value)` for every entry, ascending.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], u64)) {
        // SAFETY: read-only traversal.
        unsafe {
            let root = (*self.arena.resolve(self.hdr)).root;
            self.walk(root, &mut f);
        }
    }

    unsafe fn walk(&self, p: RelPtr<Node>, f: &mut impl FnMut(&[u8], u64)) {
        let n = self.node(p);
        for i in 0..n.count as usize {
            if n.leaf == 0 {
                self.walk(n.children[i], f);
            }
            f(self.key_bytes(n.keys[i]), n.vals[i]);
        }
        if n.leaf == 0 {
            self.walk(n.children[n.count as usize], f);
        }
    }

    /// Collects all entries (tests and small trees only).
    pub fn entries(&self) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        self.for_each(|k, v| out.push((k.to_vec(), v)));
        out
    }

    /// In-order traversal of keys in `[lo, hi)`; `f(key, value)` for each.
    /// Subtrees outside the range are pruned, so a narrow range on a large
    /// tree touches only O(log n + matches) nodes.
    pub fn for_each_range(&self, lo: &[u8], hi: Option<&[u8]>, mut f: impl FnMut(&[u8], u64)) {
        // SAFETY: read-only traversal.
        unsafe {
            let root = (*self.arena.resolve(self.hdr)).root;
            self.walk_range(root, lo, hi, &mut f);
        }
    }

    unsafe fn walk_range(
        &self,
        p: RelPtr<Node>,
        lo: &[u8],
        hi: Option<&[u8]>,
        f: &mut impl FnMut(&[u8], u64),
    ) {
        let n = self.node(p);
        let c = n.count as usize;
        // First key index ≥ lo.
        let mut start = 0;
        while start < c && self.key_bytes(n.keys[start]) < lo {
            start += 1;
        }
        for i in start..c {
            let k = self.key_bytes(n.keys[i]);
            let in_range = hi.is_none_or(|h| k < h);
            if n.leaf == 0 {
                // The child left of keys[i] may hold in-range keys even if
                // keys[i] itself is past hi.
                self.walk_range(n.children[i], lo, hi, f);
            }
            if !in_range {
                return;
            }
            f(k, n.vals[i]);
        }
        if n.leaf == 0 {
            self.walk_range(n.children[c], lo, hi, f);
        }
    }

    /// Traverses every key starting with `prefix`, ascending.
    pub fn for_each_prefix(&self, prefix: &[u8], mut f: impl FnMut(&[u8], u64)) {
        let hi = prefix_upper_bound(prefix);
        self.for_each_range(prefix, hi.as_deref(), |k, v| {
            debug_assert!(k.starts_with(prefix));
            f(k, v)
        });
    }

    /// Verifies every B-tree invariant; panics with a description on
    /// violation. Used by tests and debug assertions. Requires exclusive
    /// access (quiesced tree).
    pub fn check_invariants(&self) {
        // SAFETY: read-only traversal.
        unsafe {
            let root = (*self.arena.resolve(self.hdr)).root;
            let mut count = 0u64;
            let mut depth = None;
            self.check_node(root, true, None, None, 0, &mut depth, &mut count);
            assert_eq!(
                count,
                self.len(),
                "len counter disagrees with tree contents"
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    unsafe fn check_node(
        &self,
        p: RelPtr<Node>,
        is_root: bool,
        lower: Option<&[u8]>,
        upper: Option<&[u8]>,
        depth: usize,
        leaf_depth: &mut Option<usize>,
        count: &mut u64,
    ) {
        let n = self.node(p);
        assert!(n.version != OBSOLETE, "reachable node marked obsolete");
        assert!(n.version & 1 == 0, "reachable node left latched");
        let c = n.count as usize;
        assert!(c <= MAX_KEYS, "node overfull");
        if !is_root {
            assert!(c >= T - 1, "non-root node underfull: {c} keys");
        }
        *count += c as u64;
        let mut prev: Option<&[u8]> = None;
        for i in 0..c {
            let k = self.key_bytes(n.keys[i]);
            if let Some(pk) = prev {
                assert!(pk < k, "keys out of order");
            }
            if let Some(lo) = lower {
                assert!(k > lo, "key below subtree lower bound");
            }
            if let Some(hi) = upper {
                assert!(k < hi, "key above subtree upper bound");
            }
            prev = Some(k);
        }
        if n.leaf == 1 {
            match *leaf_depth {
                None => *leaf_depth = Some(depth),
                Some(d) => assert_eq!(d, depth, "leaves at unequal depth"),
            }
        } else {
            for i in 0..=c {
                let lo = if i == 0 {
                    lower
                } else {
                    Some(self.key_bytes(n.keys[i - 1]))
                };
                let hi = if i == c {
                    upper
                } else {
                    Some(self.key_bytes(n.keys[i]))
                };
                assert!(!n.children[i].is_null(), "internal node with null child");
                self.check_node(n.children[i], false, lo, hi, depth + 1, leaf_depth, count);
            }
        }
    }
}

/// Owned snapshot of one node, reused across [`BTreeHandle::snap_node`]
/// calls in a scan.
#[derive(Default)]
struct NodeSnap {
    version: u64,
    leaf: bool,
    keys: Vec<Vec<u8>>,
    vals: Vec<u64>,
    children: Vec<RelPtr<Node>>,
}

/// The exclusive upper bound of the key range sharing `prefix`: the prefix
/// with its last byte bumped (carrying over 0xFF bytes); an all-0xFF
/// prefix has no bound.
fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut hi = prefix.to_vec();
    loop {
        match hi.pop() {
            None => return None,
            Some(b) if b < 0xFF => {
                hi.push(b + 1);
                return Some(hi);
            }
            Some(_) => continue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv1a;
    use dstore_arena::DramMemory;
    use proptest::prelude::*;
    use std::sync::atomic::AtomicBool;

    fn arena() -> Arena<DramMemory> {
        Arena::create(DramMemory::new(1 << 22))
    }

    #[test]
    fn empty_tree() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        assert!(t.is_empty());
        assert_eq!(t.get(b"nope"), None);
        assert!(!t.contains(b"nope"));
        t.check_invariants();
    }

    #[test]
    fn insert_get_roundtrip() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        assert_eq!(t.insert(b"alpha", 1), None);
        assert_eq!(t.insert(b"beta", 2), None);
        assert_eq!(t.insert(b"gamma", 3), None);
        assert_eq!(t.get(b"alpha"), Some(1));
        assert_eq!(t.get(b"beta"), Some(2));
        assert_eq!(t.get(b"gamma"), Some(3));
        assert_eq!(t.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn insert_replace_returns_old() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        assert_eq!(t.insert(b"k", 1), None);
        assert_eq!(t.insert(b"k", 2), Some(1));
        assert_eq!(t.get(b"k"), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_and_ordering_with_many_keys() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        let n = 2000u64;
        for i in 0..n {
            // Shuffled-ish insertion order.
            let k = (i * 7919) % n;
            t.insert(format!("key{k:06}").as_bytes(), k);
        }
        assert_eq!(t.len(), n);
        t.check_invariants();
        let entries = t.entries();
        assert_eq!(entries.len(), n as usize);
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "iteration out of order");
        }
        for i in 0..n {
            assert_eq!(t.get(format!("key{i:06}").as_bytes()), Some(i));
        }
    }

    #[test]
    fn remove_missing_returns_none() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        t.insert(b"present", 1);
        assert_eq!(t.remove(b"absent"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_all_in_various_orders() {
        for &stride in &[1u64, 3, 7, 11] {
            let a = arena();
            let t = BTreeHandle::create(&a);
            let n = 500u64;
            for i in 0..n {
                t.insert(format!("k{i:05}").as_bytes(), i);
            }
            for i in 0..n {
                let k = (i * stride) % n;
                assert_eq!(
                    t.remove(format!("k{k:05}").as_bytes()),
                    Some(k),
                    "stride {stride} remove {k}"
                );
                if i % 50 == 0 {
                    t.check_invariants();
                }
            }
            assert!(t.is_empty());
            t.check_invariants();
        }
    }

    #[test]
    fn interleaved_insert_remove() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        let mut model = std::collections::BTreeMap::new();
        for i in 0u64..3000 {
            let k = format!("obj{:04}", (i * 31) % 400);
            if i % 3 == 0 {
                let got = t.remove(k.as_bytes());
                let want = model.remove(k.as_bytes());
                assert_eq!(got, want, "remove {k}");
            } else {
                let got = t.insert(k.as_bytes(), i);
                let want = model.insert(k.clone().into_bytes(), i);
                assert_eq!(got, want, "insert {k}");
            }
        }
        t.check_invariants();
        let got = t.entries();
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn keys_survive_region_copy() {
        // The whole point of the arena design: copy the region, re-attach,
        // and the tree is intact at the same offsets.
        let a = arena();
        let t = BTreeHandle::create(&a);
        for i in 0..300u64 {
            t.insert(format!("copy{i:04}").as_bytes(), i);
        }
        let hdr = t.header_ptr();
        let b = arena();
        a.copy_allocated_to(&b);
        let t2 = BTreeHandle::attach(&b, hdr);
        assert_eq!(t2.len(), 300);
        t2.check_invariants();
        for i in 0..300u64 {
            assert_eq!(t2.get(format!("copy{i:04}").as_bytes()), Some(i));
        }
        // Mutating the copy does not affect the original (shadow isolation).
        t2.remove(b"copy0000");
        assert_eq!(t.get(b"copy0000"), Some(0));
        assert_eq!(t2.get(b"copy0000"), None);
    }

    #[test]
    fn binary_keys_and_empty_key() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        t.insert(b"", 0);
        t.insert(&[0u8, 1, 2], 1);
        t.insert(&[0u8, 1], 2);
        t.insert(&[255u8; 32], 3);
        assert_eq!(t.get(b""), Some(0));
        assert_eq!(t.get(&[0u8, 1, 2]), Some(1));
        assert_eq!(t.get(&[0u8, 1]), Some(2));
        assert_eq!(t.get(&[255u8; 32]), Some(3));
        t.check_invariants();
        let e = t.entries();
        assert_eq!(e[0].0, b"");
    }

    #[test]
    fn range_scans_prune_correctly() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        for i in 0..1000u64 {
            t.insert(format!("k{i:04}").as_bytes(), i);
        }
        // Closed-open range.
        let mut got = vec![];
        t.for_each_range(b"k0100", Some(b"k0110"), |k, v| got.push((k.to_vec(), v)));
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"k0100");
        assert_eq!(got[9].0, b"k0109");
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Open-ended range.
        let mut n = 0;
        t.for_each_range(b"k0990", None, |_, _| n += 1);
        assert_eq!(n, 10);
        // Empty range.
        let mut n = 0;
        t.for_each_range(b"k0500", Some(b"k0500"), |_, _| n += 1);
        assert_eq!(n, 0);
        // Full range equals full traversal.
        let mut n = 0;
        t.for_each_range(b"", None, |_, _| n += 1);
        assert_eq!(n, 1000);
    }

    #[test]
    fn prefix_scans() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        for tenant in ["alpha", "beta", "gamma"] {
            for i in 0..50u64 {
                t.insert(format!("{tenant}/obj{i:03}").as_bytes(), i);
            }
        }
        let mut got = vec![];
        t.for_each_prefix(b"beta/", |k, _| got.push(k.to_vec()));
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|k| k.starts_with(b"beta/")));
        // Prefix that bumps through 0xFF bytes.
        t.insert(&[0xFF, 0xFF, 1], 1);
        t.insert(&[0xFF, 0xFF, 2], 2);
        let mut n = 0;
        t.for_each_prefix(&[0xFF, 0xFF], |_, _| n += 1);
        assert_eq!(n, 2);
        // Empty prefix = everything.
        let mut n = 0;
        t.for_each_prefix(b"", |_, _| n += 1);
        assert_eq!(n, 152);
    }

    #[test]
    fn node_fits_512_class() {
        assert!(
            std::mem::size_of::<Node>() <= 512,
            "{}",
            std::mem::size_of::<Node>()
        );
        // The free-node scrub and version protocol require the version
        // word to be the first field.
        assert_eq!(std::mem::offset_of!(Node, version), 0);
    }

    // ------------------------------------------------------------------
    // OLC mode

    #[test]
    fn olc_single_thread_matches_model() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        let stats = OlcStats::default();
        let mut model = std::collections::BTreeMap::new();
        for i in 0u64..4000 {
            let k = format!("olc{:04}", (i * 37) % 600);
            if i % 3 == 0 {
                assert_eq!(
                    t.remove_olc(k.as_bytes(), &stats),
                    model.remove(k.as_bytes()),
                    "remove {k}"
                );
            } else {
                assert_eq!(
                    t.insert_olc(k.as_bytes(), i, &stats),
                    model.insert(k.clone().into_bytes(), i),
                    "insert {k}"
                );
            }
            if i % 500 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        for (k, v) in &model {
            assert_eq!(t.get_olc(k, &stats), Some(*v));
        }
        assert_eq!(t.get_olc(b"missing", &stats), None);
        // Scans agree with the exclusive walkers.
        let want: Vec<_> = model.into_iter().collect();
        assert_eq!(t.entries_olc(&stats), want);
        assert_eq!(t.entries(), want);
    }

    #[test]
    fn olc_scans_prune_and_prefix() {
        let a = arena();
        let t = BTreeHandle::create(&a);
        let stats = OlcStats::default();
        for i in 0..1000u64 {
            t.insert_olc(format!("k{i:04}").as_bytes(), i, &stats);
        }
        let got = t.collect_range_olc(b"k0100", Some(b"k0110"), &stats);
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b"k0100");
        assert_eq!(got[9].0, b"k0109");
        assert_eq!(t.collect_range_olc(b"k0990", None, &stats).len(), 10);
        assert_eq!(
            t.collect_range_olc(b"k0500", Some(b"k0500"), &stats).len(),
            0
        );
        t.insert_olc(&[0xFF, 0xFF, 1], 1, &stats);
        assert_eq!(t.collect_prefix_olc(&[0xFF, 0xFF], &stats).len(), 1);
        assert_eq!(t.collect_prefix_olc(b"", &stats).len(), 1001);
    }

    /// N writers splitting/merging nodes while M readers validate that
    /// every observed value matches its key's FNV hash — a torn read
    /// (value from one entry, key from another) would fail the check.
    #[test]
    fn olc_concurrent_readers_see_no_torn_values() {
        let a = arena();
        let hdr = BTreeHandle::create(&a).header_ptr();
        let stats = OlcStats::default();
        let stop = AtomicBool::new(false);
        let key_of = |w: usize, i: usize| format!("w{w}/key{i:05}");
        const WRITERS: usize = 2;
        const READERS: usize = 2;
        const KEYS: usize = 400;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let (a, stats, stop) = (&a, &stats, &stop);
                s.spawn(move || {
                    let t = BTreeHandle::attach(a, hdr);
                    // Churn: fill, drain half, refill — forces splits,
                    // borrows and merges while readers run.
                    for round in 0..6 {
                        for i in 0..KEYS {
                            let k = key_of(w, i);
                            t.insert_olc(k.as_bytes(), fnv1a(k.as_bytes()), stats);
                        }
                        for i in (round % 2..KEYS).step_by(2) {
                            let k = key_of(w, i);
                            t.remove_olc(k.as_bytes(), stats);
                        }
                    }
                    stop.store(true, AO::Release);
                });
            }
            for r in 0..READERS {
                let (a, stats, stop) = (&a, &stats, &stop);
                s.spawn(move || {
                    let t = BTreeHandle::attach(a, hdr);
                    let mut i = r;
                    let mut hits = 0u64;
                    while !stop.load(AO::Acquire) {
                        let k = key_of(i % WRITERS, (i * 13) % KEYS);
                        if let Some(v) = t.get_olc(k.as_bytes(), stats) {
                            assert_eq!(v, fnv1a(k.as_bytes()), "torn read for {k}");
                            hits += 1;
                        }
                        if i % 97 == 0 {
                            for (k, v) in t.collect_prefix_olc(b"w0/", stats) {
                                assert_eq!(v, fnv1a(&k), "torn scan entry");
                            }
                        }
                        i += 1;
                    }
                    hits
                });
            }
        });
        // Quiesced: the tree must be structurally sound.
        let t = BTreeHandle::attach(&a, hdr);
        t.check_invariants();
        for (k, v) in t.entries() {
            assert_eq!(v, fnv1a(&k));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Concurrent equivalence: writers on disjoint key spaces apply
        /// arbitrary op sequences concurrently; the final tree must equal
        /// the union of the per-writer sequential models.
        #[test]
        fn olc_concurrent_disjoint_writers_equivalence(
            ops in proptest::collection::vec(
                (0usize..3, 0u16..120, any::<u64>()), 60..240),
        ) {
            let a = arena();
            let hdr = BTreeHandle::create(&a).header_ptr();
            let stats = OlcStats::default();
            const WRITERS: usize = 3;
            let mut models: Vec<std::collections::BTreeMap<Vec<u8>, u64>> =
                vec![Default::default(); WRITERS];
            // Compute each writer's sequential model up front.
            for (w, model) in models.iter_mut().enumerate() {
                for &(op, k, v) in &ops {
                    let key = format!("w{w}/{k:05}").into_bytes();
                    match op {
                        0 | 1 => { model.insert(key, v); }
                        _ => { model.remove(&key); }
                    }
                }
            }
            std::thread::scope(|s| {
                for w in 0..WRITERS {
                    let (a, stats, ops) = (&a, &stats, &ops);
                    s.spawn(move || {
                        let t = BTreeHandle::attach(a, hdr);
                        for &(op, k, v) in ops {
                            let key = format!("w{w}/{k:05}").into_bytes();
                            match op {
                                0 | 1 => { t.insert_olc(&key, v, stats); }
                                _ => { t.remove_olc(&key, stats); }
                            }
                        }
                    });
                }
            });
            let t = BTreeHandle::attach(&a, hdr);
            t.check_invariants();
            let mut want: Vec<(Vec<u8>, u64)> = vec![];
            for m in models {
                want.extend(m);
            }
            want.sort();
            prop_assert_eq!(t.entries(), want);
        }
    }
}
