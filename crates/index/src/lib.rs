//! Index structures for DStore.
//!
//! * [`btree`] — the object index ("For maintaining an index of objects in
//!   the system, we utilize a btree", §4.2). It is generic over the arena
//!   it lives in, so the **same code** maintains the DRAM frontend tree and
//!   its PMEM shadow copy during checkpoint replay — the core enabler of
//!   DIPPER's backend design (§3.5).
//! * [`readcount`] — the volatile read-count table used for read-write
//!   concurrency control ("a new in-memory hash table that maps object
//!   names to their current read count", §4.4). It is deliberately *not*
//!   shadowed: after a crash there are no in-flight reads, so its recovered
//!   state is trivially all-zeroes.

#![warn(missing_docs)]

pub mod btree;
pub mod readcount;

pub use btree::{BTreeHandle, BTreeHeader, OlcStats};
pub use readcount::{ReadCounts, ReadGuard};

/// FNV-1a hash of a byte string — used for shard selection and object-name
/// hashing throughout DStore (stable across runs, unlike `DefaultHasher`).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        // Known FNV-1a vector.
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
