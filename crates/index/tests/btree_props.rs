//! Property tests: the arena B-tree is observationally equivalent to
//! `std::collections::BTreeMap` under arbitrary op sequences, and its
//! structural invariants hold throughout.

use dstore_arena::{Arena, DramMemory};
use dstore_index::BTreeHandle;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, u64),
    Remove(Vec<u8>),
    Get(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small key space to force collisions, replacements, and deletes of
    // present keys.
    prop::collection::vec(0u8..8, 0..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy().prop_map(Op::Remove),
        1 => key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equivalent_to_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let arena = Arena::create(DramMemory::new(1 << 22));
        let tree = BTreeHandle::create(&arena);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(&k, v), model.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k).copied());
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), model.len() as u64);
        let got = tree.entries();
        let want: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Range scans agree with the BTreeMap model for arbitrary bounds.
    #[test]
    fn range_scans_match_model(
        kvs in prop::collection::vec((key_strategy(), any::<u64>()), 1..200),
        lo in key_strategy(),
        hi in key_strategy(),
    ) {
        let arena = Arena::create(DramMemory::new(1 << 22));
        let tree = BTreeHandle::create(&arena);
        let mut model = BTreeMap::new();
        for (k, v) in kvs {
            tree.insert(&k, v);
            model.insert(k, v);
        }
        // Closed-open range [lo, hi). (std's range() panics on inverted
        // bounds; ours just yields nothing.)
        let mut got = vec![];
        tree.for_each_range(&lo, Some(&hi), |k, v| got.push((k.to_vec(), v)));
        let want: Vec<_> = if lo < hi {
            model
                .range::<[u8], _>((
                    std::ops::Bound::Included(&lo[..]),
                    std::ops::Bound::Excluded(&hi[..]),
                ))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        } else {
            vec![]
        };
        prop_assert_eq!(got, want);
        // Open-ended range [lo, ∞).
        let mut got = vec![];
        tree.for_each_range(&lo, None, |k, v| got.push((k.to_vec(), v)));
        let want: Vec<_> = model
            .range::<[u8], _>((std::ops::Bound::Included(&lo[..]), std::ops::Bound::Unbounded))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Prefix scans return exactly the keys with that prefix, in order.
    #[test]
    fn prefix_scans_match_model(
        kvs in prop::collection::vec((key_strategy(), any::<u64>()), 1..200),
        prefix in key_strategy(),
    ) {
        let arena = Arena::create(DramMemory::new(1 << 22));
        let tree = BTreeHandle::create(&arena);
        let mut model = BTreeMap::new();
        for (k, v) in kvs {
            tree.insert(&k, v);
            model.insert(k, v);
        }
        let mut got = vec![];
        tree.for_each_prefix(&prefix, |k, v| got.push((k.to_vec(), v)));
        let want: Vec<_> = model
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// A copied region re-attached as a second tree is observationally
    /// equal — the checkpoint shadow-copy property.
    #[test]
    fn region_copy_is_observationally_equal(
        kvs in prop::collection::vec((key_strategy(), any::<u64>()), 1..150)
    ) {
        let a = Arena::create(DramMemory::new(1 << 22));
        let tree = BTreeHandle::create(&a);
        let mut model = BTreeMap::new();
        for (k, v) in kvs {
            tree.insert(&k, v);
            model.insert(k, v);
        }
        let b = Arena::create(DramMemory::new(1 << 22));
        a.copy_allocated_to(&b);
        let shadow = BTreeHandle::attach(&b, tree.header_ptr());
        shadow.check_invariants();
        let want: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(shadow.entries(), want);
    }
}
