//! # dstore-protocol — the wire format of the DStore network front door
//!
//! A dependency-light, length-prefixed binary protocol covering the full
//! Table-2 point-op API (`put`/`get`/`update`/`delete`/`stat`/`exists`)
//! plus the observability RPCs (`stats`, `health`, `telemetry_snapshot`),
//! and [`DStoreClient`], a synchronous, pipelining-capable client.
//!
//! ## Frame layout
//!
//! Every frame — request or response — is one length-prefixed record,
//! all integers little-endian:
//!
//! ```text
//! frame    := len:u32           payload length, ≤ MAX_FRAME − 4
//!             payload
//! payload  := magic:u8          0xD5, cheap desync detection
//!             request_id:u64    chosen by the client, echoed by the server
//!             kind:u8           opcode (request) / response tag
//!             body              kind-specific, fixed-width + length-prefixed
//! ```
//!
//! Request IDs make the protocol *pipelined*: a connection may have any
//! number of requests in flight, and the server writes responses back in
//! **completion order**, not submission order — the client matches them
//! by ID ([`DStoreClient::submit`] / [`DStoreClient::wait`]). There is no
//! framing state beyond the length prefix, so a decoder can always make
//! progress on any byte stream: it yields a frame, asks for more bytes,
//! or fails with [`DsError::Protocol`] — never a panic, never a hang
//! (property-tested in `tests/wire_props.rs` against truncation, bit
//! flips, and random prefixes).
//!
//! ## Error model
//!
//! Application errors travel as a response tag carrying a stable numeric
//! code plus the [`DsError`] display text, and decode back into the same
//! `DsError` variant on the client — including [`DsError::Busy`], the
//! backpressure signal a `dstore-server` emits instead of buffering
//! unboundedly, and [`DsError::Protocol`] for malformed frames.

#![warn(missing_docs)]

pub mod client;
pub mod snapshot;
pub mod wire;

pub use client::DStoreClient;
pub use wire::{
    decode_error, encode_error, FrameDecoder, Request, Response, MAGIC, MAX_FRAME, MAX_VALUE_LEN,
};

/// Re-exported result/error types: the protocol speaks `DsError` end to
/// end.
pub use dstore::{DsError, DsResult};
