//! [`DStoreClient`]: a synchronous, pipelining-capable client for
//! `dstore-server`.
//!
//! Two usage styles share one connection:
//!
//! * **sync** — [`DStoreClient::put`], [`DStoreClient::get`], … submit
//!   one request and block for its response;
//! * **pipelined** — [`DStoreClient::submit`] queues any number of
//!   requests (returning their IDs), [`DStoreClient::flush`] pushes
//!   them out in one write, and [`DStoreClient::wait`] collects each
//!   response whenever it lands. The server replies in *completion*
//!   order; out-of-order arrivals are parked internally and handed out
//!   by ID, so callers can wait in any order.
//!
//! The client is deliberately `std`-only and single-threaded: one
//! `TcpStream`, blocking reads, no runtime. Share a store across
//! threads by opening one client per thread — exactly the paper's
//! one-context-per-thread pattern over the network.

use crate::wire::{encode_request, FrameDecoder, Request, Response};
use dstore::{DsError, DsResult, HealthSnapshot, ObjectStat, StatsSnapshot};
use dstore_telemetry::TelemetrySnapshot;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A synchronous, pipelining-capable DStore connection.
pub struct DStoreClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    wbuf: Vec<u8>,
    next_id: u64,
    outstanding: HashSet<u64>,
    parked: HashMap<u64, Result<Response, DsError>>,
}

fn io_err(e: std::io::Error) -> DsError {
    DsError::Io(e.to_string())
}

impl DStoreClient {
    /// Connects to a `dstore-server` (e.g. `"127.0.0.1:7878"`).
    /// `TCP_NODELAY` is set: frames are already batched explicitly by
    /// the pipelining API, so Nagle only adds tail latency.
    pub fn connect(addr: impl ToSocketAddrs) -> DsResult<Self> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(DStoreClient {
            stream,
            decoder: FrameDecoder::new(),
            wbuf: Vec::new(),
            next_id: 1,
            outstanding: HashSet::new(),
            parked: HashMap::new(),
        })
    }

    /// Sets (or clears) the blocking-read timeout; a response slower
    /// than this surfaces as [`DsError::Io`].
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> DsResult<()> {
        self.stream.set_read_timeout(t).map_err(io_err)
    }

    /// Requests submitted but not yet collected with [`Self::wait`].
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Queues a request into the client's write buffer and returns its
    /// request ID. Nothing reaches the socket until [`Self::flush`] (or
    /// a sync convenience method) runs — that batching is what makes a
    /// pipelined burst one `write`.
    pub fn submit(&mut self, req: &Request) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(id);
        encode_request(id, req, &mut self.wbuf);
        id
    }

    /// Writes all queued requests to the socket.
    pub fn flush(&mut self) -> DsResult<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf).map_err(io_err)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Blocks until the response for `id` arrives (flushing first).
    /// Responses for *other* in-flight requests that arrive earlier are
    /// parked and returned by their own `wait` calls. An application
    /// error (e.g. [`DsError::NotFound`], [`DsError::Busy`]) is the
    /// `Err` of the returned result, exactly as the store would have
    /// returned it in-process.
    pub fn wait(&mut self, id: u64) -> DsResult<Response> {
        if !self.outstanding.contains(&id) && !self.parked.contains_key(&id) {
            return Err(DsError::Protocol(format!(
                "request id {id} never submitted"
            )));
        }
        self.flush()?;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(result) = self.parked.remove(&id) {
                self.outstanding.remove(&id);
                return result;
            }
            while let Some((rid, result)) = self.decoder.next_response()? {
                if !self.outstanding.contains(&rid) {
                    return Err(DsError::Protocol(format!(
                        "response for unknown request id {rid}"
                    )));
                }
                self.parked.insert(rid, result);
            }
            if self.parked.contains_key(&id) {
                continue;
            }
            let n = self.stream.read(&mut chunk).map_err(io_err)?;
            if n == 0 {
                return Err(DsError::Io("connection closed by server".into()));
            }
            self.decoder.push(&chunk[..n]);
        }
    }

    fn call(&mut self, req: &Request) -> DsResult<Response> {
        let id = self.submit(req);
        self.wait(id)
    }

    // -----------------------------------------------------------------
    // sync conveniences

    /// Stores `value` under `key`; durable on the server when `Ok`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> DsResult<()> {
        match self.call(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(type_mismatch("put", &other)),
        }
    }

    /// Reads the object stored under `key`.
    pub fn get(&mut self, key: &[u8]) -> DsResult<Vec<u8>> {
        match self.call(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(v),
            other => Err(type_mismatch("get", &other)),
        }
    }

    /// Replaces an existing object; [`DsError::NotFound`] if absent.
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> DsResult<()> {
        match self.call(&Request::Update {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(type_mismatch("update", &other)),
        }
    }

    /// Deletes the object stored under `key`.
    pub fn delete(&mut self, key: &[u8]) -> DsResult<()> {
        match self.call(&Request::Delete { key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(type_mismatch("delete", &other)),
        }
    }

    /// Object metadata.
    pub fn stat(&mut self, key: &[u8]) -> DsResult<ObjectStat> {
        match self.call(&Request::Stat { key: key.to_vec() })? {
            Response::Stat(s) => Ok(s),
            other => Err(type_mismatch("stat", &other)),
        }
    }

    /// Whether `key` exists.
    pub fn exists(&mut self, key: &[u8]) -> DsResult<bool> {
        match self.call(&Request::Exists { key: key.to_vec() })? {
            Response::Bool(b) => Ok(b),
            other => Err(type_mismatch("exists", &other)),
        }
    }

    /// Fleet-merged operation counters.
    pub fn stats(&mut self) -> DsResult<StatsSnapshot> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(type_mismatch("stats", &other)),
        }
    }

    /// Fleet-merged health summary.
    pub fn health(&mut self) -> DsResult<HealthSnapshot> {
        match self.call(&Request::Health)? {
            Response::Health(h) => Ok(h),
            other => Err(type_mismatch("health", &other)),
        }
    }

    /// The server's full merged telemetry snapshot (store + server
    /// series).
    pub fn telemetry_snapshot(&mut self) -> DsResult<TelemetrySnapshot> {
        match self.call(&Request::TelemetrySnapshot)? {
            Response::Telemetry(t) => Ok(t),
            other => Err(type_mismatch("telemetry_snapshot", &other)),
        }
    }

    /// Per-shard post-mortems of the previous incarnation, exhumed from
    /// each shard's crash-persistent black box when the server
    /// recovered. One entry per shard, index order; `None` entries are
    /// shards with nothing to report (fresh store or black box off).
    pub fn crash_report(&mut self) -> DsResult<Vec<Option<dstore::CrashReport>>> {
        match self.call(&Request::CrashReport)? {
            Response::CrashReports(reports) => Ok(reports),
            other => Err(type_mismatch("crash_report", &other)),
        }
    }
}

fn type_mismatch(op: &str, got: &Response) -> DsError {
    DsError::Protocol(format!("{op}: unexpected response payload {got:?}"))
}
