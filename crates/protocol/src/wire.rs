//! Frame encoding/decoding: requests, responses, and the incremental
//! [`FrameDecoder`].
//!
//! Everything here is pure byte manipulation — no I/O — so the same code
//! drives the blocking client, the server's nonblocking readiness loop,
//! and the property tests. All decode paths are total: any input yields
//! `Ok(frame)`, `Ok(None)` (need more bytes), or
//! [`DsError::Protocol`] — never a panic.

use crate::snapshot;
use dstore::{DsError, DsResult, ObjectStat, StatsSnapshot};

/// First payload byte of every frame; a cheap stream-desync detector.
pub const MAGIC: u8 = 0xD5;

/// Upper bound on a whole frame (length prefix included). A `len`
/// field implying more is a protocol error — the connection is
/// poisoned and must be closed, because the stream offset is lost.
pub const MAX_FRAME: usize = 32 << 20;

/// Upper bound on one value. Keys are separately capped by the store's
/// own `MAX_NAME_LEN` (255), which the u16 key-length field covers.
pub const MAX_VALUE_LEN: usize = MAX_FRAME - 1024;

/// Fixed payload overhead: magic + request id + kind.
const HEADER: usize = 1 + 8 + 1;

// ---------------------------------------------------------------------
// primitive codec

/// Byte-buffer writer; the inverse of [`Reader`].
#[derive(Default)]
pub(crate) struct Writer(pub Vec<u8>);

impl Writer {
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    /// Bytes with a u16 length prefix (keys, labels, short strings).
    pub fn bytes16(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u16::MAX as usize);
        self.u16(v.len() as u16);
        self.0.extend_from_slice(v);
    }
    /// Bytes with a u32 length prefix (values).
    pub fn bytes32(&mut self, v: &[u8]) {
        debug_assert!(v.len() <= u32::MAX as usize);
        self.u32(v.len() as u32);
        self.0.extend_from_slice(v);
    }
    pub fn str16(&mut self, v: &str) {
        self.bytes16(v.as_bytes());
    }
}

fn perr(what: impl Into<String>) -> DsError {
    DsError::Protocol(what.into())
}

/// Bounds-checked reader over one frame payload. Every accessor fails
/// with [`DsError::Protocol`] instead of slicing out of range.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DsResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| perr(format!("frame truncated: need {n} more bytes")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> DsResult<u8> {
        Ok(self.take(1)?[0])
    }
    pub fn u16(&mut self) -> DsResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    pub fn u32(&mut self) -> DsResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> DsResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn f64(&mut self) -> DsResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub fn bytes16(&mut self) -> DsResult<&'a [u8]> {
        let n = self.u16()? as usize;
        self.take(n)
    }
    pub fn bytes32(&mut self) -> DsResult<&'a [u8]> {
        let n = self.u32()? as usize;
        if n > MAX_VALUE_LEN {
            return Err(perr(format!("value length {n} exceeds {MAX_VALUE_LEN}")));
        }
        self.take(n)
    }
    pub fn str16(&mut self) -> DsResult<&'a str> {
        std::str::from_utf8(self.bytes16()?).map_err(|_| perr("string field is not UTF-8"))
    }
    /// A collection length that could not possibly fit in the remaining
    /// payload is rejected up front, so corrupt counts can't drive huge
    /// allocations.
    pub fn count(&mut self, elem_min_bytes: usize) -> DsResult<usize> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(elem_min_bytes.max(1)) > remaining {
            return Err(perr(format!(
                "count {n} exceeds remaining payload {remaining}"
            )));
        }
        Ok(n)
    }
    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> DsResult<()> {
        if self.pos != self.buf.len() {
            return Err(perr(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// requests

/// One client request. `kind` bytes are stable wire API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Create or replace an object (`oput`).
    Put {
        /// Object name.
        key: Vec<u8>,
        /// Object contents.
        value: Vec<u8>,
    },
    /// Read a whole object (`oget`).
    Get {
        /// Object name.
        key: Vec<u8>,
    },
    /// Replace an **existing** object; `NotFound` if absent. Executed
    /// atomically w.r.t. other server ops on the same shard (one
    /// executor thread per shard).
    Update {
        /// Object name.
        key: Vec<u8>,
        /// New contents.
        value: Vec<u8>,
    },
    /// Delete an object (`odelete`).
    Delete {
        /// Object name.
        key: Vec<u8>,
    },
    /// Object metadata.
    Stat {
        /// Object name.
        key: Vec<u8>,
    },
    /// Existence probe.
    Exists {
        /// Object name.
        key: Vec<u8>,
    },
    /// Fleet-merged operation counters.
    Stats,
    /// Fleet-merged health summary.
    Health,
    /// The full merged telemetry snapshot (histograms, gauges, spans,
    /// flight-recorder traces) — what `dstore_top --server` polls.
    TelemetrySnapshot,
    /// Per-shard post-mortems of the previous incarnation, exhumed from
    /// each shard's crash-persistent black box during recovery — what
    /// `dstore_top --post-mortem` renders.
    CrashReport,
}

const REQ_PUT: u8 = 1;
const REQ_GET: u8 = 2;
const REQ_UPDATE: u8 = 3;
const REQ_DELETE: u8 = 4;
const REQ_STAT: u8 = 5;
const REQ_EXISTS: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_HEALTH: u8 = 8;
const REQ_TELEMETRY: u8 = 9;
const REQ_CRASH_REPORT: u8 = 10;

impl Request {
    /// The key this request routes by (`None` for fleet-wide RPCs).
    pub fn key(&self) -> Option<&[u8]> {
        match self {
            Request::Put { key, .. }
            | Request::Get { key }
            | Request::Update { key, .. }
            | Request::Delete { key }
            | Request::Stat { key }
            | Request::Exists { key } => Some(key),
            _ => None,
        }
    }

    /// Metric label for this request kind.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Put { .. } => "put",
            Request::Get { .. } => "get",
            Request::Update { .. } => "update",
            Request::Delete { .. } => "delete",
            Request::Stat { .. } => "stat",
            Request::Exists { .. } => "exists",
            Request::Stats => "stats",
            Request::Health => "health",
            Request::TelemetrySnapshot => "telemetry_snapshot",
            Request::CrashReport => "crash_report",
        }
    }

    fn kind(&self) -> u8 {
        match self {
            Request::Put { .. } => REQ_PUT,
            Request::Get { .. } => REQ_GET,
            Request::Update { .. } => REQ_UPDATE,
            Request::Delete { .. } => REQ_DELETE,
            Request::Stat { .. } => REQ_STAT,
            Request::Exists { .. } => REQ_EXISTS,
            Request::Stats => REQ_STATS,
            Request::Health => REQ_HEALTH,
            Request::TelemetrySnapshot => REQ_TELEMETRY,
            Request::CrashReport => REQ_CRASH_REPORT,
        }
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Request::Put { key, value } | Request::Update { key, value } => {
                w.bytes16(key);
                w.bytes32(value);
            }
            Request::Get { key }
            | Request::Delete { key }
            | Request::Stat { key }
            | Request::Exists { key } => w.bytes16(key),
            Request::Stats
            | Request::Health
            | Request::TelemetrySnapshot
            | Request::CrashReport => {}
        }
    }

    fn decode_body(kind: u8, r: &mut Reader<'_>) -> DsResult<Request> {
        Ok(match kind {
            REQ_PUT | REQ_UPDATE => {
                let key = r.bytes16()?.to_vec();
                let value = r.bytes32()?.to_vec();
                if kind == REQ_PUT {
                    Request::Put { key, value }
                } else {
                    Request::Update { key, value }
                }
            }
            REQ_GET => Request::Get {
                key: r.bytes16()?.to_vec(),
            },
            REQ_DELETE => Request::Delete {
                key: r.bytes16()?.to_vec(),
            },
            REQ_STAT => Request::Stat {
                key: r.bytes16()?.to_vec(),
            },
            REQ_EXISTS => Request::Exists {
                key: r.bytes16()?.to_vec(),
            },
            REQ_STATS => Request::Stats,
            REQ_HEALTH => Request::Health,
            REQ_TELEMETRY => Request::TelemetrySnapshot,
            REQ_CRASH_REPORT => Request::CrashReport,
            other => return Err(perr(format!("unknown request opcode {other}"))),
        })
    }
}

// ---------------------------------------------------------------------
// responses

/// One server response (the non-error payloads; errors travel as a
/// dedicated tag and surface as `Err(DsError)` on the client).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Mutation acknowledged — the operation is durable.
    Ok,
    /// `get` result.
    Value(Vec<u8>),
    /// `exists` result.
    Bool(bool),
    /// `stat` result.
    Stat(ObjectStat),
    /// `stats` result, fleet-merged.
    Stats(StatsSnapshot),
    /// `health` result, fleet-merged.
    Health(dstore::HealthSnapshot),
    /// `telemetry_snapshot` result.
    Telemetry(dstore_telemetry::TelemetrySnapshot),
    /// `crash_report` result: one entry per shard, index order; `None`
    /// entries are shards with nothing to report.
    CrashReports(Vec<Option<dstore::CrashReport>>),
}

const RESP_OK: u8 = 0;
const RESP_VALUE: u8 = 1;
const RESP_BOOL: u8 = 2;
const RESP_STAT: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_HEALTH: u8 = 5;
const RESP_TELEMETRY: u8 = 6;
const RESP_CRASH_REPORTS: u8 = 7;
const RESP_ERR: u8 = 0xEE;

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::Ok => RESP_OK,
            Response::Value(_) => RESP_VALUE,
            Response::Bool(_) => RESP_BOOL,
            Response::Stat(_) => RESP_STAT,
            Response::Stats(_) => RESP_STATS,
            Response::Health(_) => RESP_HEALTH,
            Response::Telemetry(_) => RESP_TELEMETRY,
            Response::CrashReports(_) => RESP_CRASH_REPORTS,
        }
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Response::Ok => {}
            Response::Value(v) => w.bytes32(v),
            Response::Bool(b) => w.u8(*b as u8),
            Response::Stat(s) => snapshot::write_object_stat(w, s),
            Response::Stats(s) => snapshot::write_stats(w, s),
            Response::Health(h) => snapshot::write_health(w, h),
            Response::Telemetry(t) => snapshot::write_telemetry(w, t),
            Response::CrashReports(reports) => snapshot::write_crash_reports(w, reports),
        }
    }

    fn decode_body(kind: u8, r: &mut Reader<'_>) -> DsResult<Response> {
        Ok(match kind {
            RESP_OK => Response::Ok,
            RESP_VALUE => Response::Value(r.bytes32()?.to_vec()),
            RESP_BOOL => Response::Bool(match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(perr(format!("bool field holds {other}"))),
            }),
            RESP_STAT => Response::Stat(snapshot::read_object_stat(r)?),
            RESP_STATS => Response::Stats(snapshot::read_stats(r)?),
            RESP_HEALTH => Response::Health(snapshot::read_health(r)?),
            RESP_TELEMETRY => Response::Telemetry(snapshot::read_telemetry(r)?),
            RESP_CRASH_REPORTS => Response::CrashReports(snapshot::read_crash_reports(r)?),
            other => return Err(perr(format!("unknown response tag {other}"))),
        })
    }
}

// ---------------------------------------------------------------------
// error codes

/// Encodes a [`DsError`] as `(stable code, detail)`. The codes are
/// frozen wire API; the detail round-trips the human-readable part.
pub fn encode_error(e: &DsError) -> (u8, String) {
    match e {
        DsError::NotFound => (1, String::new()),
        DsError::OutOfSpace => (2, String::new()),
        DsError::OutOfMetadataSpace => (3, String::new()),
        DsError::OutOfRange { requested, size } => (4, format!("{requested}:{size}")),
        DsError::NameTooLong(n) => (5, n.to_string()),
        DsError::NotFormatted => (6, String::new()),
        DsError::BadMode => (7, String::new()),
        DsError::ReservedName => (8, String::new()),
        DsError::ShardMismatch(s) => (9, s.clone()),
        DsError::ShardStarved => (10, String::new()),
        DsError::Io(s) => (11, s.clone()),
        DsError::Protocol(s) => (12, s.clone()),
        DsError::Busy => (13, String::new()),
    }
}

/// Decodes a `(code, detail)` pair back into the same [`DsError`].
pub fn decode_error(code: u8, detail: &str) -> DsResult<DsError> {
    Ok(match code {
        1 => DsError::NotFound,
        2 => DsError::OutOfSpace,
        3 => DsError::OutOfMetadataSpace,
        4 => {
            let (a, b) = detail
                .split_once(':')
                .ok_or_else(|| perr("malformed OutOfRange detail"))?;
            DsError::OutOfRange {
                requested: a.parse().map_err(|_| perr("malformed OutOfRange offset"))?,
                size: b.parse().map_err(|_| perr("malformed OutOfRange size"))?,
            }
        }
        5 => DsError::NameTooLong(detail.parse().map_err(|_| perr("malformed NameTooLong"))?),
        6 => DsError::NotFormatted,
        7 => DsError::BadMode,
        8 => DsError::ReservedName,
        9 => DsError::ShardMismatch(detail.into()),
        10 => DsError::ShardStarved,
        11 => DsError::Io(detail.into()),
        12 => DsError::Protocol(detail.into()),
        13 => DsError::Busy,
        other => return Err(perr(format!("unknown error code {other}"))),
    })
}

// ---------------------------------------------------------------------
// frame assembly

fn encode_frame(id: u64, kind: u8, out: &mut Vec<u8>, body: impl FnOnce(&mut Writer)) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]); // length placeholder
    let mut w = Writer(std::mem::take(out));
    w.u8(MAGIC);
    w.u64(id);
    w.u8(kind);
    body(&mut w);
    *out = w.0;
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Appends one encoded request frame to `out`.
pub fn encode_request(id: u64, req: &Request, out: &mut Vec<u8>) {
    encode_frame(id, req.kind(), out, |w| req.encode_body(w));
}

/// Appends one encoded (success) response frame to `out`.
pub fn encode_response(id: u64, resp: &Response, out: &mut Vec<u8>) {
    encode_frame(id, resp.kind(), out, |w| resp.encode_body(w));
}

/// Appends one encoded error-response frame to `out`.
pub fn encode_error_response(id: u64, err: &DsError, out: &mut Vec<u8>) {
    let (code, detail) = encode_error(err);
    encode_frame(id, RESP_ERR, out, |w| {
        w.u8(code);
        w.str16(&detail);
    });
}

/// One decoded response: the request it answers, and either its payload
/// or the application error.
pub type ResponseFrame = (u64, Result<Response, DsError>);

/// Incremental frame decoder: feed bytes with [`FrameDecoder::push`],
/// pull frames with `next_request`/`next_response`.
///
/// The decoder is *poisoning*: after the first [`DsError::Protocol`] the
/// stream offset is unreliable, so every later call returns the same
/// error and the connection must be closed. Buffered bytes are bounded
/// by [`MAX_FRAME`] plus one read chunk — a peer cannot make the
/// decoder buffer unboundedly by never completing a frame, because a
/// frame longer than [`MAX_FRAME`] is rejected from its length prefix
/// alone.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: Option<DsError>,
}

impl FrameDecoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily: only when the consumed prefix dominates.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pulls the next complete frame payload, `None` if more bytes are
    /// needed.
    fn next_payload(&mut self) -> DsResult<Option<(u64, u8, usize, usize)>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        if len + 4 > MAX_FRAME || len < HEADER {
            return Err(self.poison(perr(format!("frame length {len} out of bounds"))));
        }
        if avail < 4 + len {
            return Ok(None);
        }
        let start = self.pos + 4;
        let payload = &self.buf[start..start + len];
        if payload[0] != MAGIC {
            return Err(self.poison(perr(format!("bad magic byte {:#x}", payload[0]))));
        }
        let id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
        let kind = payload[9];
        self.pos = start + len;
        Ok(Some((id, kind, start + HEADER, start + len)))
    }

    fn poison(&mut self, e: DsError) -> DsError {
        self.poisoned = Some(e.clone());
        e
    }

    /// Decodes the next request frame (server side).
    pub fn next_request(&mut self) -> DsResult<Option<(u64, Request)>> {
        let Some((id, kind, body_start, body_end)) = self.next_payload()? else {
            return Ok(None);
        };
        let mut r = Reader::new(&self.buf[body_start..body_end]);
        let req = Request::decode_body(kind, &mut r)
            .and_then(|req| r.finish().map(|()| req))
            .map_err(|e| self.poison(e))?;
        Ok(Some((id, req)))
    }

    /// Decodes the next response frame (client side).
    pub fn next_response(&mut self) -> DsResult<Option<ResponseFrame>> {
        let Some((id, kind, body_start, body_end)) = self.next_payload()? else {
            return Ok(None);
        };
        let mut r = Reader::new(&self.buf[body_start..body_end]);
        let result = (|| {
            if kind == RESP_ERR {
                let code = r.u8()?;
                let detail = r.str16()?.to_string();
                r.finish()?;
                Ok(Err(decode_error(code, &detail)?))
            } else {
                let resp = Response::decode_body(kind, &mut r)?;
                r.finish()?;
                Ok(Ok(resp))
            }
        })()
        .map_err(|e: DsError| self.poison(e))?;
        Ok(Some((id, result)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Put {
                key: b"k".to_vec(),
                value: vec![7; 1000],
            },
            Request::Get { key: b"k".to_vec() },
            Request::Update {
                key: b"k".to_vec(),
                value: vec![],
            },
            Request::Delete { key: vec![] },
            Request::Stat { key: b"s".to_vec() },
            Request::Exists { key: b"e".to_vec() },
            Request::Stats,
            Request::Health,
            Request::TelemetrySnapshot,
            Request::CrashReport,
        ];
        let mut bytes = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            encode_request(i as u64, r, &mut bytes);
        }
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        for (i, want) in reqs.iter().enumerate() {
            let (id, got) = d.next_request().unwrap().unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, want);
        }
        assert!(d.next_request().unwrap().is_none());
    }

    #[test]
    fn split_delivery_reassembles() {
        let mut bytes = Vec::new();
        encode_request(
            42,
            &Request::Put {
                key: b"key".to_vec(),
                value: vec![1, 2, 3],
            },
            &mut bytes,
        );
        let mut d = FrameDecoder::new();
        for b in &bytes[..bytes.len() - 1] {
            d.push(std::slice::from_ref(b));
            assert!(d.next_request().unwrap().is_none());
        }
        d.push(&bytes[bytes.len() - 1..]);
        let (id, _) = d.next_request().unwrap().unwrap();
        assert_eq!(id, 42);
    }

    #[test]
    fn error_frames_roundtrip_every_variant() {
        let errors = vec![
            DsError::NotFound,
            DsError::OutOfSpace,
            DsError::OutOfMetadataSpace,
            DsError::OutOfRange {
                requested: 9,
                size: 5,
            },
            DsError::NameTooLong(999),
            DsError::NotFormatted,
            DsError::BadMode,
            DsError::ReservedName,
            DsError::ShardMismatch("seed".into()),
            DsError::ShardStarved,
            DsError::Io("pipe".into()),
            DsError::Protocol("junk".into()),
            DsError::Busy,
        ];
        let mut bytes = Vec::new();
        for (i, e) in errors.iter().enumerate() {
            encode_error_response(i as u64, e, &mut bytes);
        }
        let mut d = FrameDecoder::new();
        d.push(&bytes);
        for (i, want) in errors.iter().enumerate() {
            let (id, got) = d.next_response().unwrap().unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got.unwrap_err(), want);
        }
    }

    #[test]
    fn oversized_length_prefix_poisons() {
        let mut d = FrameDecoder::new();
        d.push(&u32::MAX.to_le_bytes());
        assert!(matches!(d.next_request(), Err(DsError::Protocol(_))));
        // Poisoned: still the same error, not a panic or a reset.
        assert!(matches!(d.next_request(), Err(DsError::Protocol(_))));
    }
}
