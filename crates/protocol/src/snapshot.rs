//! Binary codecs for the observability payloads: [`ObjectStat`],
//! [`StatsSnapshot`], [`HealthSnapshot`], and the full
//! [`TelemetrySnapshot`] IR (counters, gauges, histograms, span rings,
//! and flight-recorder traces).
//!
//! The telemetry codec is what lets `dstore_top --server` and any other
//! remote consumer reuse the exact in-process rendering path: the
//! decoded snapshot is the same `TelemetrySnapshot` the registry
//! produces, so `merged_histogram`, `TailAttribution::from_traces`,
//! `to_prometheus`, and the Perfetto exporter all work unchanged on the
//! client side of a socket.
//!
//! ## String interning
//!
//! `Span::name`, `OpTrace::{op, phase}`, and
//! [`HealthSnapshot::checkpoint_phase`] are `&'static str` by design
//! (they are recorded on hot paths from compile-time constants). The
//! decoder maps incoming strings back to statics through a global
//! intern table pre-seeded with every name the workspace emits; an
//! unknown name is leaked **once** per distinct string, with a hard cap
//! ([`MAX_INTERNED`]) after which unknown names all decode to the
//! sentinel `"?"` — so a hostile peer cannot grow process memory
//! without bound through the telemetry channel.

use crate::wire::{Reader, Writer};
use dstore::{CrashReport, DsError, DsResult, HealthSnapshot, ObjectStat, StatsSnapshot};
use dstore_telemetry::{
    BlackBoxEvent, BlackBoxHeartbeat, CounterSeries, GaugeSeries, HistogramSeries,
    HistogramSnapshot, Labels, OpTrace, Span, SpanSeries, TelemetrySnapshot, TraceSeries,
    NUM_SEGMENTS, SEGMENT_NAMES,
};
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Hard cap on distinct strings the decoder will ever leak-intern.
pub const MAX_INTERNED: usize = 1 << 16;

/// Names every store in this workspace can legitimately emit; interned
/// for free so ordinary snapshots never leak at all.
const KNOWN_NAMES: &[&str] = &[
    "",
    "?",
    "idle",
    "trigger",
    "apply",
    "flush",
    "swap",
    "redo",
    "copy",
    "replay",
    "replay_group",
    "replay_serial",
    "put",
    "get",
    "update",
    "delete",
    "owrite",
    "oread",
    "exists",
    "stat",
    // black-box lifecycle events + server RPC names
    "startup",
    "recovered",
    "log_full_stall",
    "clean_shutdown",
    "stats",
    "health",
    "telemetry_snapshot",
    "crash_report",
];

fn intern(s: &str) -> &'static str {
    static SET: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = SET.get_or_init(|| {
        let mut seed: HashSet<&'static str> = HashSet::new();
        seed.extend(SEGMENT_NAMES);
        seed.extend(KNOWN_NAMES);
        Mutex::new(seed)
    });
    let mut set = set.lock().unwrap();
    if let Some(known) = set.get(s) {
        return known;
    }
    if set.len() >= MAX_INTERNED {
        return "?";
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------
// small fixed payloads

pub(crate) fn write_object_stat(w: &mut Writer, s: &ObjectStat) {
    w.u64(s.size);
    w.u32(s.version);
    w.u64(s.blocks);
    w.u64(s.mtime_lsn);
}

pub(crate) fn read_object_stat(r: &mut Reader<'_>) -> DsResult<ObjectStat> {
    Ok(ObjectStat {
        size: r.u64()?,
        version: r.u32()?,
        blocks: r.u64()?,
        mtime_lsn: r.u64()?,
    })
}

pub(crate) fn write_stats(w: &mut Writer, s: &StatsSnapshot) {
    for v in [
        s.elapsed_ns,
        s.puts,
        s.gets,
        s.deletes,
        s.writes,
        s.reads,
        s.ww_conflicts,
        s.rw_backoffs,
        s.log_full_stalls,
    ] {
        w.u64(v);
    }
}

pub(crate) fn read_stats(r: &mut Reader<'_>) -> DsResult<StatsSnapshot> {
    Ok(StatsSnapshot {
        elapsed_ns: r.u64()?,
        puts: r.u64()?,
        gets: r.u64()?,
        deletes: r.u64()?,
        writes: r.u64()?,
        reads: r.u64()?,
        ww_conflicts: r.u64()?,
        rw_backoffs: r.u64()?,
        log_full_stalls: r.u64()?,
    })
}

pub(crate) fn write_health(w: &mut Writer, h: &HealthSnapshot) {
    w.u64(h.checkpoint_panics);
    w.str16(h.checkpoint_phase);
    w.u64(h.checkpoints_completed);
    w.f64(h.log_used_fraction);
    w.u64(h.log_full_stalls);
    w.u64(h.spans_dropped);
}

pub(crate) fn read_health(r: &mut Reader<'_>) -> DsResult<HealthSnapshot> {
    Ok(HealthSnapshot {
        checkpoint_panics: r.u64()?,
        checkpoint_phase: intern(r.str16()?),
        checkpoints_completed: r.u64()?,
        log_used_fraction: r.f64()?,
        log_full_stalls: r.u64()?,
        spans_dropped: r.u64()?,
    })
}

// ---------------------------------------------------------------------
// telemetry snapshot

fn write_labels(w: &mut Writer, labels: &Labels) {
    debug_assert!(labels.len() <= u16::MAX as usize);
    w.u16(labels.len() as u16);
    for (k, v) in labels {
        w.str16(k);
        w.str16(v);
    }
}

fn read_labels(r: &mut Reader<'_>) -> DsResult<Labels> {
    let n = r.u16()? as usize;
    let mut out = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let k = r.str16()?.to_string();
        let v = r.str16()?.to_string();
        out.push((k, v));
    }
    Ok(out)
}

fn write_hist(w: &mut Writer, h: &HistogramSnapshot) {
    w.u64(h.count);
    w.u64(h.sum);
    w.u64(h.max);
    w.u32(h.buckets.len() as u32);
    for &(le, n) in &h.buckets {
        w.u64(le);
        w.u64(n);
    }
}

fn read_hist(r: &mut Reader<'_>) -> DsResult<HistogramSnapshot> {
    let count = r.u64()?;
    let sum = r.u64()?;
    let max = r.u64()?;
    let n = r.count(16)?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push((r.u64()?, r.u64()?));
    }
    Ok(HistogramSnapshot {
        count,
        sum,
        max,
        buckets,
    })
}

fn write_span(w: &mut Writer, s: &Span) {
    w.str16(s.name);
    w.u64(s.start_ns);
    w.u64(s.end_ns);
    w.u64(s.a);
    w.u64(s.b);
    w.u64(s.seq);
}

fn read_span(r: &mut Reader<'_>) -> DsResult<Span> {
    Ok(Span {
        name: intern(r.str16()?),
        start_ns: r.u64()?,
        end_ns: r.u64()?,
        a: r.u64()?,
        b: r.u64()?,
        seq: r.u64()?,
    })
}

fn write_trace(w: &mut Writer, t: &OpTrace) {
    w.str16(t.op);
    w.u64(t.start_ns);
    w.u64(t.end_ns);
    w.u8(NUM_SEGMENTS as u8);
    for &ns in &t.seg_ns {
        w.u64(ns);
    }
    w.str16(t.phase);
    w.u32(t.log_used_milli);
    w.u8(t.sampled as u8 | (t.slo as u8) << 1);
    w.u64(t.seq);
}

fn read_trace(r: &mut Reader<'_>) -> DsResult<OpTrace> {
    let op = intern(r.str16()?);
    let start_ns = r.u64()?;
    let end_ns = r.u64()?;
    // Tolerate a peer built with a different segment table: extra
    // segments are dropped, missing ones stay zero.
    let nseg = r.u8()? as usize;
    let mut seg_ns = [0u64; NUM_SEGMENTS];
    let mut slots = seg_ns.iter_mut();
    for _ in 0..nseg {
        let v = r.u64()?;
        if let Some(slot) = slots.next() {
            *slot = v;
        }
    }
    let phase = intern(r.str16()?);
    let log_used_milli = r.u32()?;
    let flags = r.u8()?;
    if flags > 0b11 {
        return Err(DsError::Protocol(format!("bad trace flags {flags:#x}")));
    }
    Ok(OpTrace {
        op,
        start_ns,
        end_ns,
        seg_ns,
        phase,
        log_used_milli,
        sampled: flags & 1 != 0,
        slo: flags & 2 != 0,
        seq: r.u64()?,
    })
}

pub(crate) fn write_telemetry(w: &mut Writer, t: &TelemetrySnapshot) {
    w.u64(t.taken_ns);
    w.u32(t.counters.len() as u32);
    for s in &t.counters {
        w.str16(&s.name);
        write_labels(w, &s.labels);
        w.u64(s.value);
    }
    w.u32(t.gauges.len() as u32);
    for s in &t.gauges {
        w.str16(&s.name);
        write_labels(w, &s.labels);
        w.f64(s.value);
    }
    w.u32(t.histograms.len() as u32);
    for s in &t.histograms {
        w.str16(&s.name);
        write_labels(w, &s.labels);
        write_hist(w, &s.hist);
    }
    w.u32(t.spans.len() as u32);
    for s in &t.spans {
        w.str16(&s.name);
        write_labels(w, &s.labels);
        w.u32(s.spans.len() as u32);
        for span in &s.spans {
            write_span(w, span);
        }
    }
    w.u32(t.traces.len() as u32);
    for s in &t.traces {
        w.str16(&s.name);
        write_labels(w, &s.labels);
        w.u32(s.traces.len() as u32);
        for trace in &s.traces {
            write_trace(w, trace);
        }
    }
}

pub(crate) fn read_telemetry(r: &mut Reader<'_>) -> DsResult<TelemetrySnapshot> {
    let taken_ns = r.u64()?;

    let n = r.count(12)?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push(CounterSeries {
            name: r.str16()?.to_string(),
            labels: read_labels(r)?,
            value: r.u64()?,
        });
    }

    let n = r.count(12)?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        gauges.push(GaugeSeries {
            name: r.str16()?.to_string(),
            labels: read_labels(r)?,
            value: r.f64()?,
        });
    }

    let n = r.count(28)?;
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        histograms.push(HistogramSeries {
            name: r.str16()?.to_string(),
            labels: read_labels(r)?,
            hist: read_hist(r)?,
        });
    }

    let n = r.count(8)?;
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str16()?.to_string();
        let labels = read_labels(r)?;
        let count = r.count(42)?;
        let mut list = Vec::with_capacity(count);
        for _ in 0..count {
            list.push(read_span(r)?);
        }
        spans.push(SpanSeries {
            name,
            labels,
            spans: list,
        });
    }

    let n = r.count(8)?;
    let mut traces = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str16()?.to_string();
        let labels = read_labels(r)?;
        let count = r.count(30)?;
        let mut list = Vec::with_capacity(count);
        for _ in 0..count {
            list.push(read_trace(r)?);
        }
        traces.push(TraceSeries {
            name,
            labels,
            traces: list,
        });
    }

    Ok(TelemetrySnapshot {
        taken_ns,
        counters,
        gauges,
        histograms,
        spans,
        traces,
    })
}

// ---------------------------------------------------------------------
// crash reports (post-mortem)

fn write_crash_report(w: &mut Writer, r: &CrashReport) {
    w.u8(r.clean as u8);
    match &r.heartbeat {
        Some(hb) => {
            w.u8(1);
            w.u64(hb.last_lsn);
            w.str16(hb.checkpoint_phase);
            w.u32(hb.log_used_milli);
            w.u64(hb.arena_high_water);
            w.u64(hb.ssd_blocks_used);
            w.u64(hb.wall_unix_ns);
            w.u64(hb.mono_ns);
        }
        None => w.u8(0),
    }
    w.u32(r.events.len() as u32);
    for ev in &r.events {
        w.str16(ev.name);
        w.u64(ev.mono_ns);
        w.u64(ev.a);
        w.u64(ev.b);
    }
    w.u32(r.traces.len() as u32);
    for t in &r.traces {
        write_trace(w, t);
    }
    w.u64(r.log_tail_lsn);
    w.u64(r.replayed_records);
}

fn read_crash_report(r: &mut Reader<'_>) -> DsResult<CrashReport> {
    let clean = r.u8()? != 0;
    let heartbeat = match r.u8()? {
        0 => None,
        1 => Some(BlackBoxHeartbeat {
            last_lsn: r.u64()?,
            checkpoint_phase: intern(r.str16()?),
            log_used_milli: r.u32()?,
            arena_high_water: r.u64()?,
            ssd_blocks_used: r.u64()?,
            wall_unix_ns: r.u64()?,
            mono_ns: r.u64()?,
        }),
        other => {
            return Err(DsError::Protocol(format!(
                "bad heartbeat presence byte {other}"
            )))
        }
    };
    let n = r.count(26)?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(BlackBoxEvent {
            name: intern(r.str16()?),
            mono_ns: r.u64()?,
            a: r.u64()?,
            b: r.u64()?,
        });
    }
    let n = r.count(30)?;
    let mut traces = Vec::with_capacity(n);
    for _ in 0..n {
        traces.push(read_trace(r)?);
    }
    Ok(CrashReport {
        clean,
        heartbeat,
        events,
        traces,
        log_tail_lsn: r.u64()?,
        replayed_records: r.u64()?,
    })
}

pub(crate) fn write_crash_reports(w: &mut Writer, reports: &[Option<CrashReport>]) {
    w.u32(reports.len() as u32);
    for report in reports {
        match report {
            Some(report) => {
                w.u8(1);
                write_crash_report(w, report);
            }
            None => w.u8(0),
        }
    }
}

pub(crate) fn read_crash_reports(r: &mut Reader<'_>) -> DsResult<Vec<Option<CrashReport>>> {
    let n = r.count(1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(match r.u8()? {
            0 => None,
            1 => Some(read_crash_report(r)?),
            other => {
                return Err(DsError::Protocol(format!(
                    "bad crash-report presence byte {other}"
                )))
            }
        });
    }
    Ok(out)
}
