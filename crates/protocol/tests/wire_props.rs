//! Property suite for the wire format: round-trips under arbitrary
//! chunking, and a corruption battery (truncation, bit flips, random
//! garbage, oversized length prefixes). The invariant under attack is
//! the decoder contract: every call yields a frame, asks for more
//! bytes, or fails with a clean [`DsError::Protocol`] — it never
//! panics, never loops, and never hands back a frame it did not fully
//! validate.

use dstore::{DsError, HealthSnapshot, ObjectStat, StatsSnapshot};
use dstore_protocol::wire::{
    encode_error_response, encode_request, encode_response, FrameDecoder, Request, Response,
    MAX_FRAME,
};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 1..40)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..300)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        3 => (key_strategy(), value_strategy())
            .prop_map(|(key, value)| Request::Put { key, value }),
        3 => key_strategy().prop_map(|key| Request::Get { key }),
        1 => (key_strategy(), value_strategy())
            .prop_map(|(key, value)| Request::Update { key, value }),
        1 => key_strategy().prop_map(|key| Request::Delete { key }),
        1 => key_strategy().prop_map(|key| Request::Stat { key }),
        1 => key_strategy().prop_map(|key| Request::Exists { key }),
        1 => Just(Request::Stats),
        1 => Just(Request::Health),
        1 => Just(Request::TelemetrySnapshot),
        1 => Just(Request::CrashReport),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        2 => Just(Response::Ok),
        2 => value_strategy().prop_map(Response::Value),
        1 => any::<u64>().prop_map(|v| Response::Bool(v & 1 == 1)),
        1 => (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(size, blocks, lsn)| {
            Response::Stat(ObjectStat {
                size,
                version: (blocks % 1000) as u32,
                blocks,
                mtime_lsn: lsn,
            })
        }),
        1 => (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
            Response::Stats(StatsSnapshot {
                elapsed_ns: a,
                puts: b,
                gets: a ^ b,
                deletes: a.wrapping_add(b),
                writes: a >> 1,
                reads: b >> 1,
                ww_conflicts: a & 0xff,
                rw_backoffs: b & 0xff,
                log_full_stalls: (a ^ b) & 0xff,
            })
        }),
        1 => (any::<u64>(), 0u64..1000).prop_map(|(n, fill)| {
            Response::Health(HealthSnapshot {
                checkpoint_panics: n & 1,
                checkpoint_phase: if n & 2 == 0 { "idle" } else { "apply" },
                checkpoints_completed: n >> 2,
                log_used_fraction: fill as f64 / 1000.0,
                log_full_stalls: n & 0xff,
                spans_dropped: n >> 8,
            })
        }),
        1 => (any::<u64>(), any::<u64>(), 0u32..4).prop_map(|(flushes, fences, shard)| {
            // The ordering-accounting counters as a sharded fleet merge
            // exports them: per-shard labels on every series.
            let mut snap = dstore_telemetry::TelemetrySnapshot::new();
            let labels = vec![("shard".to_string(), shard.to_string())];
            snap.push_counter("dstore_pmem_flushes_total", labels.clone(), flushes);
            snap.push_counter("dstore_pmem_fences_total", labels.clone(), fences);
            snap.push_counter("dstore_pmem_dedup_lines_total", labels.clone(), flushes ^ fences);
            snap.push_counter(
                "dstore_pmem_elided_lines_total",
                labels.clone(),
                flushes.wrapping_add(fences),
            );
            // Index OLC conflict counters ride the same snapshot.
            snap.push_counter("dstore_index_restarts_total", labels.clone(), flushes >> 1);
            snap.push_counter("dstore_index_latch_waits_total", labels, fences >> 1);
            Response::Telemetry(snap)
        }),
        1 => (any::<u64>(), any::<u64>()).prop_map(|(lsn, n)| {
            Response::CrashReports(vec![
                None,
                Some(dstore::CrashReport {
                    clean: n & 1 == 0,
                    heartbeat: (n & 2 == 0).then(|| dstore_telemetry::BlackBoxHeartbeat {
                        last_lsn: lsn,
                        checkpoint_phase: "idle",
                        log_used_milli: (n % 1000) as u32,
                        arena_high_water: n,
                        ssd_blocks_used: n >> 3,
                        wall_unix_ns: lsn ^ n,
                        mono_ns: lsn.wrapping_add(n),
                    }),
                    events: vec![dstore_telemetry::BlackBoxEvent {
                        name: "trigger",
                        mono_ns: n,
                        a: lsn,
                        b: n >> 1,
                    }],
                    traces: vec![],
                    log_tail_lsn: lsn.wrapping_add(1),
                    replayed_records: n & 0xffff,
                }),
            ])
        }),
    ]
}

fn error_strategy() -> impl Strategy<Value = DsError> {
    prop_oneof![
        Just(DsError::NotFound),
        Just(DsError::OutOfSpace),
        Just(DsError::Busy),
        Just(DsError::ReservedName),
        (0u64..999, 0u64..999)
            .prop_map(|(requested, size)| DsError::OutOfRange { requested, size }),
        key_strategy().prop_map(|k| DsError::Protocol(format!("bad {}", k.len()))),
        key_strategy().prop_map(|k| DsError::Io(format!("io {}", k.len()))),
    ]
}

/// Splits `bytes` into chunks at the (normalized) cut points and feeds
/// them to `f` one at a time — simulating arbitrary TCP segmentation.
fn feed_chunked(
    decoder: &mut FrameDecoder,
    bytes: &[u8],
    cuts: &[usize],
    mut on_chunk: impl FnMut(&mut FrameDecoder),
) {
    let mut points: Vec<usize> = cuts
        .iter()
        .map(|&c| if bytes.is_empty() { 0 } else { c % bytes.len() })
        .collect();
    points.push(bytes.len());
    points.sort_unstable();
    let mut prev = 0;
    for p in points {
        decoder.push(&bytes[prev..p]);
        prev = p;
        on_chunk(decoder);
    }
}

/// The OLC index counters survive the wire encode/decode unchanged —
/// `dstore_top --server` reads these two names from the decoded
/// snapshot, so their round-trip is pinned here by name.
#[test]
fn index_olc_counters_roundtrip_by_name() {
    let mut snap = dstore_telemetry::TelemetrySnapshot::new();
    snap.push_counter("dstore_index_restarts_total", vec![], 42);
    snap.push_counter("dstore_index_latch_waits_total", vec![], 7);
    let mut stream = Vec::new();
    encode_response(9, &Response::Telemetry(snap), &mut stream);
    let mut dec = FrameDecoder::new();
    dec.push(&stream);
    let (id, resp) = dec.next_response().unwrap().expect("one whole frame");
    assert_eq!(id, 9);
    let Ok(Response::Telemetry(got)) = resp else {
        panic!("expected a telemetry response, got {resp:?}");
    };
    assert_eq!(got.counter_total("dstore_index_restarts_total"), 42);
    assert_eq!(got.counter_total("dstore_index_latch_waits_total"), 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_roundtrip_under_any_chunking(
        reqs in prop::collection::vec((any::<u64>(), request_strategy()), 1..12),
        cuts in prop::collection::vec(any::<u64>().prop_map(|v| v as usize), 0..8),
    ) {
        let mut stream = Vec::new();
        for (id, req) in &reqs {
            encode_request(*id, req, &mut stream);
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        feed_chunked(&mut dec, &stream, &cuts, |d| {
            while let Some(frame) = d.next_request().unwrap() {
                got.push(frame);
            }
        });
        prop_assert_eq!(got, reqs);
        prop_assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn responses_and_errors_roundtrip(
        frames in prop::collection::vec(
            (any::<u64>(), prop_oneof![
                3 => response_strategy().prop_map(Ok),
                1 => error_strategy().prop_map(Err),
            ]),
            1..12,
        ),
        cuts in prop::collection::vec(any::<u64>().prop_map(|v| v as usize), 0..8),
    ) {
        let mut stream = Vec::new();
        for (id, frame) in &frames {
            match frame {
                Ok(resp) => encode_response(*id, resp, &mut stream),
                Err(e) => encode_error_response(*id, e, &mut stream),
            }
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        feed_chunked(&mut dec, &stream, &cuts, |d| {
            while let Some(frame) = d.next_response().unwrap() {
                got.push(frame);
            }
        });
        prop_assert_eq!(got.len(), frames.len());
        for ((gid, gres), (wid, wres)) in got.iter().zip(frames.iter()) {
            prop_assert_eq!(gid, wid);
            match (gres, wres) {
                (Ok(g), Ok(w)) => prop_assert_eq!(g, w),
                // Errors compare by Display: the wire carries the stable
                // code + detail, and decode must rebuild the same text.
                (Err(g), Err(w)) => prop_assert_eq!(g.to_string(), w.to_string()),
                (g, w) => prop_assert!(false, "ok/err mismatch: {g:?} vs {w:?}"),
            }
        }
    }

    #[test]
    fn truncated_stream_never_yields_a_partial_frame(
        reqs in prop::collection::vec((any::<u64>(), request_strategy()), 1..8),
        cut in any::<u64>(),
    ) {
        let mut stream = Vec::new();
        let mut boundaries = Vec::new();
        for (id, req) in &reqs {
            encode_request(*id, req, &mut stream);
            boundaries.push(stream.len());
        }
        let cut = cut as usize % stream.len();
        let mut dec = FrameDecoder::new();
        dec.push(&stream[..cut]);
        let mut yielded = 0usize;
        while let Some((id, req)) = dec.next_request().unwrap() {
            // Every decoded frame must be one of the originals, intact.
            prop_assert_eq!((id, req), reqs[yielded].clone());
            yielded += 1;
        }
        // Exactly the frames whose encoding ended at or before the cut.
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(yielded, complete);
    }

    #[test]
    fn bit_flips_never_panic_or_hang(
        reqs in prop::collection::vec((any::<u64>(), request_strategy()), 1..6),
        flip in any::<u64>(),
    ) {
        let mut stream = Vec::new();
        for (id, req) in &reqs {
            encode_request(*id, req, &mut stream);
        }
        let byte = (flip as usize / 8) % stream.len();
        stream[byte] ^= 1 << (flip % 8);
        let mut dec = FrameDecoder::new();
        dec.push(&stream);
        // Progress bound: the decoder can never yield more frames than
        // were encoded plus one phantom born of the flip. Each call
        // either consumes bytes, returns need-more, or poisons — so a
        // bounded loop suffices to prove no livelock.
        let mut yielded = 0usize;
        for _ in 0..reqs.len() + 2 {
            match dec.next_request() {
                Ok(Some(_)) => yielded += 1,
                Ok(None) => break,          // waiting for bytes that will never come
                Err(DsError::Protocol(msg)) => {
                    prop_assert!(!msg.is_empty());
                    // Poisoned: every later call must keep failing.
                    prop_assert!(dec.next_request().is_err());
                    break;
                }
                Err(other) => prop_assert!(false, "non-protocol error: {other}"),
            }
        }
        prop_assert!(yielded <= reqs.len() + 1, "yielded {yielded} from {} frames", reqs.len());
    }

    #[test]
    fn random_garbage_never_panics(
        garbage in prop::collection::vec(any::<u8>(), 0..4096),
        cuts in prop::collection::vec(any::<u64>().prop_map(|v| v as usize), 0..6),
    ) {
        let mut dec = FrameDecoder::new();
        feed_chunked(&mut dec, &garbage, &cuts, |d| {
            for _ in 0..64 {
                match d.next_request() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        });
    }

    #[test]
    fn oversized_length_prefix_is_rejected_up_front(
        excess in 1u64..1 << 30,
        id in any::<u64>(),
    ) {
        // A length prefix past MAX_FRAME poisons immediately — the
        // decoder must not buffer toward an unbounded allocation.
        let len = (MAX_FRAME as u64 - 4 + excess).min(u32::MAX as u64) as u32;
        let mut dec = FrameDecoder::new();
        dec.push(&len.to_le_bytes());
        dec.push(&id.to_le_bytes()); // a few bytes of "payload"
        match dec.next_request() {
            Err(DsError::Protocol(msg)) => prop_assert!(msg.contains("frame")),
            other => prop_assert!(false, "expected protocol error, got {other:?}"),
        }
        prop_assert!(dec.next_request().is_err());
    }
}

/// Deterministic (non-property) check: a pipelined burst decodes to the
/// same frames as one-at-a-time delivery, byte-for-byte.
#[test]
fn pipelined_burst_equals_sequential_delivery() {
    let reqs: Vec<(u64, Request)> = (0..32)
        .map(|i| {
            (
                i,
                Request::Put {
                    key: format!("obj-{i}").into_bytes(),
                    value: vec![i as u8; (i as usize * 37) % 512],
                },
            )
        })
        .collect();
    let mut burst = Vec::new();
    for (id, r) in &reqs {
        encode_request(*id, r, &mut burst);
    }

    let mut all_at_once = FrameDecoder::new();
    all_at_once.push(&burst);
    let mut byte_by_byte = FrameDecoder::new();

    let mut got_burst = Vec::new();
    while let Some(f) = all_at_once.next_request().unwrap() {
        got_burst.push(f);
    }
    let mut got_dribble = Vec::new();
    for b in &burst {
        byte_by_byte.push(std::slice::from_ref(b));
        while let Some(f) = byte_by_byte.next_request().unwrap() {
            got_dribble.push(f);
        }
    }
    assert_eq!(got_burst, reqs);
    assert_eq!(got_dribble, reqs);
}
