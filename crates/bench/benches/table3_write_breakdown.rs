//! **Table 3** — Time breakdown of write requests.
//!
//! Instrumented 4 KB and 16 KB puts, split into NVMe write / B-tree /
//! metadata / log flush, "in cycles, nanoseconds, and as a percentage of
//! total time". Expected shape: the NVMe write dominates (~88 % at 4 KB,
//! ~96 % at 16 KB — "software overhead ~10%"); metadata and log-flush
//! costs are size-agnostic (logical logging).

use dstore::WriteBreakdown;
use dstore_bench::*;

/// The paper's testbed clock (8280L @ 2.70 GHz) for the cycles row.
const GHZ: f64 = 2.7;

fn measure(size: usize, iters: usize) -> WriteBreakdown {
    let store = dstore_default(4096);
    let ctx = store.context();
    let value = vec![0xB7u8; size];
    // Preload so the measured puts are steady-state updates.
    for i in 0..256 {
        ctx.put(format!("obj{i}").as_bytes(), &value).unwrap();
    }
    let mut acc = WriteBreakdown::default();
    for i in 0..iters {
        let bd = ctx
            .put_instrumented(format!("obj{}", i % 256).as_bytes(), &value)
            .unwrap();
        acc.add(&bd);
    }
    acc.scaled(iters as u64)
}

fn print_rows(label: &str, bd: &WriteBreakdown) {
    let cols = [
        ("NVMe Write", bd.nvme_ns),
        ("BTree", bd.btree_ns),
        ("Metadata", bd.metadata_ns),
        ("Log Flush", bd.log_flush_ns),
        ("Total", bd.total_ns),
    ];
    print!("{label:<6} {:<14}", "cycles");
    for (_, ns) in cols {
        print!(" {:>12}", (ns as f64 * GHZ) as u64);
    }
    println!();
    print!("{:<6} {:<14}", "", "ns");
    for (_, ns) in cols {
        print!(" {:>12}", ns);
    }
    println!();
    print!("{:<6} {:<14}", "", "% of total");
    for (_, ns) in cols {
        print!(" {:>12.2}", 100.0 * ns as f64 / bd.total_ns.max(1) as f64);
    }
    println!();
}

fn main() {
    let iters = count(3000).max(200);
    println!("# Table 3: time breakdown of write requests ({iters} iters each)");
    println!(
        "{:<6} {:<14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "size", "", "NVMe Write", "BTree", "Metadata", "Log Flush", "Total"
    );
    print_rows("4KB", &measure(4096, iters));
    print_rows("16KB", &measure(16384, iters));
}
