//! **Figure 11** (extension) — Multi-shard scaling and checkpoint
//! staggering.
//!
//! Three questions the single-store figures can't answer:
//!
//! 1. *Wall-clock behaviour*: throughput and tail latency of the full
//!    sharded store under YCSB A/B at 1/2/4/8 shards. Note that the
//!    client threads and all simulated device waits time-share the
//!    host's cores, so aggregate wall throughput only scales once the
//!    host has at least as many cores as shards; on smaller hosts this
//!    section shows the *tail* benefits while throughput stays flat.
//! 2. *Shared-nothing scaling*: shards share no pool, log, or
//!    checkpoint engine, so the aggregate write throughput an N-core
//!    deployment realizes is the sum of the per-shard partitions. We
//!    measure that directly by driving each shard's own key partition
//!    in isolation (through the full router path) and summing —
//!    expect ≥2× YCSB-A write throughput at 4 shards vs 1, limited
//!    only by router balance.
//! 3. *Staggering*: with aligned checkpoints every shard storms
//!    PMEM at once and the stalls correlate; the staggered scheduler
//!    serializes the storms. The effect depends on the per-shard
//!    checkpoint engine: DIPPER checkpoints are tailless by design, so
//!    the two schedules should be near parity, while CoW checkpoints
//!    stall writers for the whole snapshot copy — aligning them stalls
//!    every shard at once, so staggered p9999 < aligned p9999.

use dstore::CheckpointMode;
use dstore_baselines::KvSystem;
use dstore_bench::*;
use dstore_shard::SchedulerMode;
use dstore_workload::{
    run_closed_loop, LatencyHistogram, RunOptions, RunReport, Workload, WorkloadKind, YcsbOp,
};

fn shard_label(n: u32) -> &'static str {
    match n {
        1 => "DStore-shard x1",
        2 => "DStore-shard x2",
        4 => "DStore-shard x4",
        8 => "DStore-shard x8",
        _ => "DStore-shard xN",
    }
}

/// Index encoded in a canonical workload key (`user{i:012}`).
fn key_index(key: &[u8]) -> usize {
    std::str::from_utf8(&key[4..])
        .expect("canonical key")
        .parse()
        .expect("canonical key index")
}

/// Drives only shard `shard`'s key partition: the workload draws from a
/// keyspace the size of the partition and each op is remapped onto the
/// partition's own keys, then routed through the full sharded path.
fn run_partition(
    kv: &ShardedKv,
    owned: &[Vec<u8>],
    kind: WorkloadKind,
    duration: std::time::Duration,
    threads: usize,
) -> RunReport {
    let opts = RunOptions {
        threads,
        duration,
        workload: Workload::new(kind, owned.len() as u64, VALUE_SIZE),
        seed: 0xD57A_11AD,
    };
    let value = vec![0x5Au8; VALUE_SIZE];
    run_closed_loop(&opts, |_t| {
        let value = value.clone();
        move |op: &YcsbOp| match op {
            YcsbOp::Read { key } => {
                kv.get(&owned[key_index(key)]);
            }
            YcsbOp::Update { key, .. } => {
                kv.put(&owned[key_index(key)], &value);
            }
        }
    })
}

fn main() {
    let keys = count(DEFAULT_KEYS);
    let duration = secs(5.0);
    let threads = threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# Figure 11: shard scaling, value=4KB, keys={keys}, threads={threads}, cores={cores}"
    );

    // -- 1. wall-clock runs of the whole sharded store ------------------
    for kind in [WorkloadKind::A, WorkloadKind::B] {
        let wname = if kind == WorkloadKind::A {
            "A (50R/50W)"
        } else {
            "B (95R/5W)"
        };
        println!("\n== YCSB {wname}: wall-clock throughput and tails vs shard count");
        if cores < 8 {
            println!(
                "   (host has {cores} core(s); wall throughput scales only with cores ≥ shards)"
            );
        }
        println!(
            "{:<20} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "system", "ops/s", "writes/s", "up50(us)", "up9999(us)", "rp50(us)", "rp9999(us)"
        );
        for shards in [1u32, 2, 4, 8] {
            let kv = ShardedKv::new(
                build_sharded(
                    shards,
                    keys,
                    CheckpointMode::Dipper,
                    SchedulerMode::Staggered,
                ),
                shard_label(shards),
            );
            preload(&kv, keys);
            let r = run_ycsb(&kv, kind, keys, duration, threads);
            let writes_s = r.update_hist.count() as f64 / r.elapsed.as_secs_f64().max(1e-9);
            println!(
                "{:<20} {:>12.0} {:>12.0} {:>10} {:>10} {:>10} {:>10}",
                shard_label(shards),
                r.throughput(),
                writes_s,
                us(r.update_hist.percentile(50.0)),
                us(r.update_hist.percentile(99.99)),
                us(r.read_hist.percentile(50.0)),
                us(r.read_hist.percentile(99.99)),
            );
        }
    }

    // -- 2. shared-nothing scaling: sum of isolated per-shard partitions
    println!("\n== YCSB A: shared-nothing scaling (per-shard partitions driven in isolation)");
    println!(
        "{:<20} {:>12} {:>12} {:>10}",
        "system", "writes/s", "ops/s", "balance"
    );
    let mut scaling: Vec<(u32, f64)> = Vec::new();
    for shards in [1u32, 2, 4, 8] {
        let kv = ShardedKv::new(
            build_sharded(
                shards,
                keys,
                CheckpointMode::Dipper,
                SchedulerMode::Staggered,
            ),
            shard_label(shards),
        );
        preload(&kv, keys);
        // Partition the canonical keyspace with the store's own router.
        let router = kv.store().router();
        let mut owned: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards as usize];
        for i in 0..keys {
            let name = Workload::key_name(i as u64);
            owned[router.shard_of(&name)].push(name);
        }
        let per_run =
            std::time::Duration::from_secs_f64((duration.as_secs_f64() / shards as f64).max(1.0));
        let mut writes_s = 0.0;
        let mut ops_s = 0.0;
        let mut min_part = f64::MAX;
        let mut max_part: f64 = 0.0;
        for part in &owned {
            let r = run_partition(&kv, part, WorkloadKind::A, per_run, threads);
            let w = r.update_hist.count() as f64 / r.elapsed.as_secs_f64().max(1e-9);
            writes_s += w;
            ops_s += r.throughput();
            min_part = min_part.min(w);
            max_part = max_part.max(w);
        }
        println!(
            "{:<20} {:>12.0} {:>12.0} {:>9.2}",
            shard_label(shards),
            writes_s,
            ops_s,
            if max_part > 0.0 {
                min_part / max_part
            } else {
                1.0
            },
        );
        scaling.push((shards, writes_s));
    }
    let base = scaling[0].1.max(1e-9);
    for &(shards, w) in &scaling[1..] {
        println!("  write speedup x{shards} vs x1: {:.2}x", w / base);
    }

    // -- 3. aligned vs staggered checkpoints at 4 shards ----------------
    // p9999 of one run is the top handful of samples; interleave several
    // trials per config and merge their histograms so the tail estimate
    // is stable and slow host drift cancels out. Trials are floored at
    // 2s so small DSTORE_BENCH_SCALE still spans checkpoint periods.
    //
    // A single closed-loop client is used here on purpose: with more
    // runnable spinning threads than host cores, OS scheduler slices
    // (tens of ms) dominate every p9999 and bury the checkpoint signal.
    // One client measures *store-side* stall latency — exactly what the
    // schedulers differ on. The keyspace is fixed rather than scaled:
    // a CoW checkpoint stalls writers for the whole metadata snapshot
    // copy, so the stall magnitude is set by resident metadata, and
    // DSTORE_BENCH_SCALE should scale run time, not the phenomenon.
    let trials = 3;
    let tail_threads = 1;
    let tail_keys = 20_000;
    let trial_dur = duration.max(std::time::Duration::from_secs(2));
    println!(
        "\n== YCSB A at 4 shards: aligned vs staggered checkpoints \
         (update latency, {trials} merged trials, {tail_threads} client)"
    );
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7}",
        "engine/scheduler",
        "ops/s",
        "p50(us)",
        "p99(us)",
        "p999(us)",
        "p9999(us)",
        "ckpts",
        "stalls"
    );
    let configs = [
        (
            "dipper/aligned",
            CheckpointMode::Dipper,
            SchedulerMode::Aligned,
        ),
        (
            "dipper/staggered",
            CheckpointMode::Dipper,
            SchedulerMode::Staggered,
        ),
        ("cow/aligned", CheckpointMode::Cow, SchedulerMode::Aligned),
        (
            "cow/staggered",
            CheckpointMode::Cow,
            SchedulerMode::Staggered,
        ),
    ];
    let mut merged: Vec<(LatencyHistogram, f64, u64, u64)> = configs
        .iter()
        .map(|_| (LatencyHistogram::new(), 0.0, 0, 0))
        .collect();
    for _ in 0..trials {
        for (slot, &(_, ckpt, mode)) in merged.iter_mut().zip(&configs) {
            let kv = ShardedKv::new(build_sharded(4, tail_keys, ckpt, mode), "DStore-shard x4");
            preload(&kv, tail_keys);
            let r = run_ycsb(&kv, WorkloadKind::A, tail_keys, trial_dur, tail_threads);
            slot.0.merge(&r.update_hist);
            slot.1 += r.throughput() / trials as f64;
            slot.2 += kv.store().checkpoints_completed();
            slot.3 += kv.store().stats().log_full_stalls;
        }
    }
    let mut p9999 = std::collections::HashMap::new();
    for ((h, tput, ckpts, stalls), &(name, _, _)) in merged.iter().zip(&configs) {
        println!(
            "{:<22} {:>12.0} {:>10} {:>10} {:>10} {:>10} {:>7} {:>7}",
            name,
            tput,
            us(h.percentile(50.0)),
            us(h.percentile(99.0)),
            us(h.percentile(99.9)),
            us(h.percentile(99.99)),
            ckpts,
            stalls,
        );
        p9999.insert(name, h.percentile(99.99) as f64);
    }
    for engine in ["dipper", "cow"] {
        let aligned = p9999[format!("{engine}/aligned").as_str()];
        let staggered = p9999[format!("{engine}/staggered").as_str()].max(1.0);
        println!(
            "  {engine}: p9999 aligned/staggered = {:.2}x ({})",
            aligned / staggered,
            if aligned > staggered {
                "staggering wins"
            } else {
                "parity — per-shard checkpoints are already tailless"
            }
        );
    }
}
