//! **Table 5** — Summary of achievable service level objectives.
//!
//! "These represent the worst case values we obtained in our
//! experiments": worst-interval throughput, p9999 latency, recovery
//! latency, and space amplification. Expected shape: DStore wins
//! throughput and p9999; MongoDB-PMSE wins recovery and space; DStore
//! (CoW) matches DStore's recovery/space but not its performance.

use dstore::{CheckpointMode, LoggingMode};
use dstore_baselines::KvSystem;
use dstore_bench::*;
use dstore_workload::{Timeline, WorkloadKind};
use std::time::Duration;

struct SloRow {
    name: &'static str,
    throughput_slo: f64,
    p9999_ns: u64,
    space_ampl: f64,
}

fn measure(name: &'static str, sys: &dyn KvSystem, keys: usize, window: Duration) -> SloRow {
    preload(sys, keys);
    let counting = CountingKv::new(sys);
    let threads = threads();
    let mut timeline = Timeline::new(Duration::from_millis(500));
    let mut p9999 = 0;
    std::thread::scope(|s| {
        let c = &counting;
        let worker = s.spawn(move || {
            run_ycsb(
                c,
                WorkloadKind::A,
                keys,
                window + Duration::from_millis(200),
                threads,
            )
        });
        timeline.sample_for(window, || {
            (
                counting.ops.load(std::sync::atomic::Ordering::Relaxed),
                0,
                0,
                0,
            )
        });
        let report = worker.join().unwrap();
        let merged = dstore_workload::LatencyHistogram::new();
        merged.merge(&report.read_hist);
        merged.merge(&report.update_hist);
        p9999 = merged.percentile(99.99);
    });
    let (d, p, s) = sys.footprint();
    let logical = (keys * VALUE_SIZE) as f64;
    SloRow {
        name,
        throughput_slo: timeline.min_ops_per_sec(),
        p9999_ns: p9999,
        space_ampl: (d + p + s) as f64 / logical,
    }
}

fn main() {
    let keys = count(DEFAULT_KEYS);
    let window = secs(8.0);
    println!("# Table 5: achievable SLOs (worst-case values), 50R/50W, {keys} keys");
    println!(
        "{:<16} {:>16} {:>14} {:>12}",
        "system", "tput SLO (IOPS)", "p9999 (us)", "space ampl"
    );

    let mut rows = Vec::new();
    {
        let kv = DStoreKv::new(dstore_default(keys), "DStore");
        rows.push(measure("DStore", &kv, keys, window));
    }
    {
        let kv = DStoreKv::new(
            build_dstore(CheckpointMode::Cow, LoggingMode::Logical, true, true, keys),
            "DStore (CoW)",
        );
        rows.push(measure("DStore (CoW)", &kv, keys, window));
    }
    {
        let lsm = build_lsm(keys, true);
        rows.push(measure("PMEM-RocksDB", lsm.as_ref(), keys, window));
    }
    {
        let mongo = build_pagecache(true);
        rows.push(measure("MongoDB-PM", mongo.as_ref(), keys, window));
    }
    {
        let pmse = build_uncached(keys);
        rows.push(measure("MongoDB-PMSE", pmse.as_ref(), keys, window));
    }

    for r in &rows {
        println!(
            "{:<16} {:>16.0} {:>14} {:>12.2}",
            r.name,
            r.throughput_slo,
            us(r.p9999_ns),
            r.space_ampl
        );
    }
    println!("\n(recovery latency SLO: see table4_recovery)");
}
