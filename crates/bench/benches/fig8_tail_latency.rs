//! **Figure 8** — Tail latency curves at full subscription.
//!
//! Read and update latency percentiles for YCSB A and B across all
//! systems. Expected shape: DStore has the flattest curves and lowest
//! values (up to 6× lower); CoW spikes at p9999 under the write-heavy A
//! but stays close to DStore under B (fewer checkpoints); MongoDB-PMSE
//! shows p999+/p9999 spikes from PMEM's own tail latency despite having
//! no checkpoints; read tails suffer alongside writes for the cached
//! systems.

use dstore::{CheckpointMode, LoggingMode};
use dstore_bench::*;
use dstore_workload::{LatencyHistogram, WorkloadKind};

fn curve(label: &str, h: &LatencyHistogram) {
    let pcts = [50.0, 90.0, 99.0, 99.9, 99.99];
    print!("{label:<34}");
    for p in pcts {
        print!(" {:>10}", us(h.percentile(p)));
    }
    println!(" {:>10}", h.count());
}

fn header(title: &str) {
    println!("\n== {title}");
    println!(
        "{:<34} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "system", "p50", "p90", "p99", "p999", "p9999", "ops"
    );
}

fn main() {
    let keys = count(DEFAULT_KEYS);
    let duration = secs(6.0);
    let threads = threads();
    println!("# Figure 8: tail latency curves (us), value=4KB, threads={threads}");

    for kind in [WorkloadKind::A, WorkloadKind::B] {
        let wname = if kind == WorkloadKind::A {
            "A (50R/50W)"
        } else {
            "B (95R/5W)"
        };
        let mut read_rows: Vec<(String, LatencyHistogram)> = Vec::new();
        let mut update_rows: Vec<(String, LatencyHistogram)> = Vec::new();

        // DStore
        {
            let kv = DStoreKv::new(dstore_default(keys), "DStore");
            preload(&kv, keys);
            let r = run_ycsb(&kv, kind, keys, duration, threads);
            read_rows.push(("DStore".into(), r.read_hist));
            update_rows.push(("DStore".into(), r.update_hist));
        }
        // DStore (CoW)
        {
            let kv = DStoreKv::new(
                build_dstore(CheckpointMode::Cow, LoggingMode::Logical, true, true, keys),
                "DStore (CoW)",
            );
            preload(&kv, keys);
            let r = run_ycsb(&kv, kind, keys, duration, threads);
            read_rows.push(("DStore (CoW)".into(), r.read_hist));
            update_rows.push(("DStore (CoW)".into(), r.update_hist));
        }
        // PMEM-RocksDB
        {
            let lsm = build_lsm(keys, true);
            preload(lsm.as_ref(), keys);
            let r = run_ycsb(lsm.as_ref(), kind, keys, duration, threads);
            read_rows.push(("PMEM-RocksDB".into(), r.read_hist));
            update_rows.push(("PMEM-RocksDB".into(), r.update_hist));
        }
        // MongoDB-PM
        {
            let mongo = build_pagecache(true);
            preload(mongo.as_ref(), keys);
            let r = run_ycsb(mongo.as_ref(), kind, keys, duration, threads);
            read_rows.push(("MongoDB-PM".into(), r.read_hist));
            update_rows.push(("MongoDB-PM".into(), r.update_hist));
        }
        // MongoDB-PMSE
        {
            let pmse = build_uncached(keys);
            preload(pmse.as_ref(), keys);
            let r = run_ycsb(pmse.as_ref(), kind, keys, duration, threads);
            read_rows.push(("MongoDB-PMSE".into(), r.read_hist));
            update_rows.push(("MongoDB-PMSE".into(), r.update_hist));
        }

        header(&format!("YCSB {wname}: read latency"));
        for (name, h) in &read_rows {
            curve(name, h);
        }
        header(&format!("YCSB {wname}: update latency"));
        for (name, h) in &update_rows {
            curve(name, h);
        }
    }
}
