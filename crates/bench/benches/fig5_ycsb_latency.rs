//! **Figure 5** — YCSB operation latency.
//!
//! "We measure the average latency of 4 KB read and update operations at
//! full-subscription with YCSB workloads A (50 % read, 50 % write) and B
//! (95 % read, 5 % write)." Expected shape: DStore lowest in all cases
//! (up to ~4× vs the slowest), update latency lower under B than A for
//! every system, DStore(CoW) ≈ DStore on *average* latency.

use dstore::{CheckpointMode, LoggingMode};
use dstore_baselines::KvSystem;
use dstore_bench::*;
use dstore_workload::WorkloadKind;

/// Object-safety shim: builders return differently-typed systems.
trait KvSystemHolder {
    fn as_kv(&self) -> &dyn KvSystem;
}
impl KvSystemHolder for DStoreKv {
    fn as_kv(&self) -> &dyn KvSystem {
        self
    }
}
impl KvSystemHolder for std::sync::Arc<dstore_baselines::LsmStore> {
    fn as_kv(&self) -> &dyn KvSystem {
        self.as_ref()
    }
}
impl KvSystemHolder for std::sync::Arc<dstore_baselines::PageCacheBTree> {
    fn as_kv(&self) -> &dyn KvSystem {
        self.as_ref()
    }
}
impl KvSystemHolder for std::sync::Arc<dstore_baselines::UncachedStore> {
    fn as_kv(&self) -> &dyn KvSystem {
        self.as_ref()
    }
}

fn main() {
    let keys = count(DEFAULT_KEYS);
    let duration = secs(5.0);
    let threads = threads();
    println!("# Figure 5: YCSB average operation latency (us)");
    println!("# keys={keys} value=4KB threads={threads} window={duration:?}");
    println!(
        "{:<34} {:>12} {:>12} {:>12} {:>12}",
        "system", "A read", "A update", "B read", "B update"
    );

    type Builder = Box<dyn Fn(usize) -> Box<dyn KvSystemHolder>>;
    let builders: Vec<(&str, Builder)> = vec![
        (
            "DStore",
            Box::new(|k| Box::new(DStoreKv::new(dstore_default(k), "DStore"))),
        ),
        (
            "DStore (CoW)",
            Box::new(|k| {
                Box::new(DStoreKv::new(
                    build_dstore(CheckpointMode::Cow, LoggingMode::Logical, true, true, k),
                    "DStore (CoW)",
                ))
            }),
        ),
        ("PMEM-RocksDB", Box::new(|k| Box::new(build_lsm(k, true)))),
        ("MongoDB-PM", Box::new(|_| Box::new(build_pagecache(true)))),
        ("MongoDB-PMSE", Box::new(|k| Box::new(build_uncached(k)))),
    ];

    for (name, build) in &builders {
        let mut cells = Vec::new();
        for kind in [WorkloadKind::A, WorkloadKind::B] {
            let sys = build(keys);
            preload(sys.as_kv(), keys);
            let r = run_ycsb(sys.as_kv(), kind, keys, duration, threads);
            cells.push(us(r.read_hist.mean() as u64));
            cells.push(us(r.update_hist.mean() as u64));
        }
        println!(
            "{name:<34} {:>12} {:>12} {:>12} {:>12}",
            cells[0], cells[1], cells[2], cells[3]
        );
    }
}
