//! **Figure 12** (extension) — Parallel-persistence write scaling.
//!
//! A/B of the write path's synchronous region at 1/2/4/8 client
//! threads: `parallel_persistence = false` reproduces the serialized
//! baseline (log append + record flush + pool plan all under one pool
//! lock), `true` is the shipped path (short log reservation under the
//! name's shard lock, record flush outside every ordering lock, commit
//! fences combined across concurrent committers).
//!
//! Two lenses per workload (put-only and YCSB A):
//!
//! 1. *Wall-clock throughput.* Simulated device costs are spin-waits,
//!    so wall scaling needs host cores ≥ client threads — on smaller
//!    hosts the rows stay flat and the next lens carries the signal.
//! 2. *Synchronous-region occupancy*: the flight recorder's
//!    `log_append` segment mean — lock wait + reservation, plus the
//!    in-lock record flush on the serialized baseline (the parallel
//!    path charges its out-of-lock flush to `log_flush` instead, shown
//!    alongside). `log_append` is the write path's serialized portion,
//!    so 1e9/mean bounds the log-order admission rate in ops/s — the
//!    scaling limit an N-core deployment hits regardless of this
//!    host's core count.
//! 3. A third lens covers the *read* path (get-only and YCSB B): the
//!    A/B there is the index mode — per-node optimistic lock coupling
//!    (`index_olc = true`, the default) against the pre-OLC whole-tree
//!    `RwLock` — with the `btree`/`lookup` segment means and the OLC
//!    restart rate alongside wall throughput.

use dstore::{DStore, DStoreConfig, LoggingMode};
use dstore_bench::*;
use dstore_telemetry::trace::{SEG_INDEX, SEG_LOG_APPEND, SEG_LOG_FLUSH, SEG_LOOKUP};
use dstore_workload::{RunReport, WorkloadKind};

/// Bench store with the parallel-persistence knob and a dense trace
/// sample (1-in-64) so short runs still yield stable segment means.
fn build(parallel: bool, keys: usize) -> DStoreKv {
    let mut cfg = DStoreConfig::bench()
        .with_logging(LoggingMode::Logical)
        .with_parallel_persistence(parallel)
        .with_auto_checkpoint(true);
    cfg.log_size = 4 << 20;
    cfg.shadow_size = (64 << 20).max(keys * 1536);
    cfg.ssd_pages = (keys as u64) * 4 + 8192;
    cfg.trace.sample_every = 64;
    DStoreKv::new(
        DStore::create(cfg).expect("create bench store"),
        if parallel { "parallel" } else { "serialized" },
    )
}

/// Bench store with the index-mode knob (read-leg A/B): `olc = true` is
/// the shipped per-node optimistic lock coupling, `false` the pre-OLC
/// whole-tree `RwLock`. The write path itself stays on the shipped
/// parallel-persistence configuration in both cells.
fn build_index(olc: bool, keys: usize) -> DStoreKv {
    let mut cfg = DStoreConfig::bench()
        .with_logging(LoggingMode::Logical)
        .with_parallel_persistence(true)
        .with_index_olc(olc)
        .with_auto_checkpoint(true);
    cfg.log_size = 4 << 20;
    cfg.shadow_size = (64 << 20).max(keys * 1536);
    cfg.ssd_pages = (keys as u64) * 4 + 8192;
    cfg.trace.sample_every = 64;
    DStoreKv::new(
        DStore::create(cfg).expect("create bench store"),
        if olc { "olc" } else { "rwlock" },
    )
}

/// Mean `(log_append, log_flush)` segment time per sampled op across
/// the whole flight recorder (cut at p0 ⇒ body + tail together cover
/// every retained trace).
fn log_seg_means_ns(store: &DStore) -> (u64, u64) {
    let Some(a) = store.tail_attribution(0.0) else {
        return (0, 0);
    };
    let ops = (a.tail.sampled_ops + a.body.sampled_ops).max(1);
    let seg = |s: usize| (a.tail.seg_ns[s] + a.body.seg_ns[s]) / ops;
    (seg(SEG_LOG_APPEND), seg(SEG_LOG_FLUSH))
}

/// Mean `(btree, lookup)` segment time per sampled op — the read path's
/// index descent (OLC restart loops included) and entry decode.
fn index_seg_means_ns(store: &DStore) -> (u64, u64) {
    let Some(a) = store.tail_attribution(0.0) else {
        return (0, 0);
    };
    let ops = (a.tail.sampled_ops + a.body.sampled_ops).max(1);
    let seg = |s: usize| (a.tail.seg_ns[s] + a.body.seg_ns[s]) / ops;
    (seg(SEG_INDEX), seg(SEG_LOOKUP))
}

/// OLC conflict counters accumulated so far (zero in `rwlock` mode).
fn index_counters(store: &DStore) -> (u64, u64) {
    let Some(snap) = store.telemetry_snapshot() else {
        return (0, 0);
    };
    (
        snap.counter_total("dstore_index_restarts_total"),
        snap.counter_total("dstore_index_latch_waits_total"),
    )
}

fn main() {
    let keys = count(DEFAULT_KEYS);
    let duration = secs(3.0);
    let cap = threads();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# Figure 12: parallel persistence write scaling, value=4KB, keys={keys}, cores={cores}"
    );
    if cores < 8 {
        println!("# (host has {cores} core(s); spin-modelled device waits do not overlap,");
        println!("#  so wall throughput is core-bound — the log_append column carries the signal)");
    }

    for (wname, kind) in [
        ("put-only (100% update)", WorkloadKind::Custom(0)),
        ("YCSB A (50R/50W)", WorkloadKind::A),
    ] {
        println!("\n== {wname}: serialized vs parallel write path vs client threads");
        println!(
            "{:>8} {:>13} {:>13} {:>8} {:>11} {:>11} {:>11} {:>8}",
            "threads",
            "ser ops/s",
            "par ops/s",
            "speedup",
            "ser logapp",
            "par logapp",
            "par logflsh",
            "ratio"
        );
        let mut four_thread: Option<(f64, f64, u64, u64)> = None;
        for t in [1usize, 2, 4, 8] {
            if t > cap {
                println!("   (threads > DSTORE_BENCH_THREADS cap {cap}; row skipped)");
                continue;
            }
            let mut cells: Vec<(RunReport, u64, u64)> = Vec::new();
            for parallel in [false, true] {
                let kv = build(parallel, keys);
                preload(&kv, keys);
                let r = run_ycsb(&kv, kind, keys, duration, t);
                let (append, flush) = log_seg_means_ns(kv.store());
                cells.push((r, append, flush));
            }
            let (ser, par) = (&cells[0], &cells[1]);
            let speedup = par.0.throughput() / ser.0.throughput().max(1e-9);
            let ratio = ser.1 as f64 / (par.1 as f64).max(1.0);
            println!(
                "{:>8} {:>13.0} {:>13.0} {:>7.2}x {:>11} {:>11} {:>11} {:>7.2}x",
                t,
                ser.0.throughput(),
                par.0.throughput(),
                speedup,
                us(ser.1),
                us(par.1),
                us(par.2),
                ratio,
            );
            if t == 4 {
                four_thread = Some((ser.0.throughput(), par.0.throughput(), ser.1, par.1));
            }
        }
        if let Some((ser_tp, par_tp, ser_ns, par_ns)) = four_thread {
            println!(
                "  at 4 threads: wall speedup {:.2}x; log-order admission \
                 (1e9/log_append) {:.0} -> {:.0} ops/s per thread ({:.2}x)",
                par_tp / ser_tp.max(1e-9),
                1e9 / (ser_ns as f64).max(1.0),
                1e9 / (par_ns as f64).max(1.0),
                ser_ns as f64 / (par_ns as f64).max(1.0),
            );
        }
    }

    // Read leg: index-mode A/B (global RwLock vs optimistic lock
    // coupling). The btree column is the index descent charged from the
    // OLC read protocol itself (restarts included), so it — not wall
    // throughput — carries the signal on core-starved hosts.
    for (wname, kind) in [
        ("get-only (100% read)", WorkloadKind::Custom(100)),
        ("YCSB B (95R/5W)", WorkloadKind::B),
    ] {
        println!("\n== {wname}: global-RwLock vs OLC index vs client threads");
        println!(
            "{:>8} {:>13} {:>13} {:>8} {:>11} {:>11} {:>11} {:>12}",
            "threads",
            "lock ops/s",
            "olc ops/s",
            "speedup",
            "lock btree",
            "olc btree",
            "olc lookup",
            "restarts/Mop"
        );
        for t in [1usize, 2, 4, 8] {
            if t > cap {
                println!("   (threads > DSTORE_BENCH_THREADS cap {cap}; row skipped)");
                continue;
            }
            let mut cells: Vec<(RunReport, u64, u64, u64)> = Vec::new();
            for olc in [false, true] {
                let kv = build_index(olc, keys);
                preload(&kv, keys);
                let r = run_ycsb(&kv, kind, keys, duration, t);
                let (btree, lookup) = index_seg_means_ns(kv.store());
                let (restarts, _waits) = index_counters(kv.store());
                cells.push((r, btree, lookup, restarts));
            }
            let (lock, olc) = (&cells[0], &cells[1]);
            let speedup = olc.0.throughput() / lock.0.throughput().max(1e-9);
            let mops = (olc.0.total_ops() as f64 / 1e6).max(1e-9);
            println!(
                "{:>8} {:>13.0} {:>13.0} {:>7.2}x {:>11} {:>11} {:>11} {:>12.1}",
                t,
                lock.0.throughput(),
                olc.0.throughput(),
                speedup,
                us(lock.1),
                us(olc.1),
                us(olc.2),
                olc.3 as f64 / mops,
            );
        }
    }
}
