//! **Figure 7** — System throughput and storage bandwidth over time.
//!
//! "We measure the aggregate throughput over a 1 minute window … The
//! troughs in the graph represent periods of checkpoint." Expected
//! shapes: DStore sustains the highest throughput with only slight dips
//! during checkpoints (its worst interval beats everyone's best — the
//! throughput SLO); MongoDB-PM shows deep periodic troughs; PMEM-RocksDB
//! stalls (quiescence violation); MongoDB-PMSE is flat but lower; DStore's
//! SSD bandwidth mirrors its throughput and its PMEM bandwidth pulses
//! with checkpoints.

use dstore::{CheckpointMode, LoggingMode};
use dstore_baselines::KvSystem;
use dstore_bench::*;
use dstore_workload::{Timeline, WorkloadKind};
use std::sync::Arc;
use std::time::Duration;

fn run_one(name: &str, sys: &dyn KvSystem, probe: DeviceProbe, keys: usize, window: Duration) {
    preload(sys, keys);
    let counting = CountingKv::new(sys);
    let threads = threads();
    let mut timeline = Timeline::new(Duration::from_millis(500));
    std::thread::scope(|s| {
        let c = &counting;
        let worker = s.spawn(move || {
            run_ycsb(
                c,
                WorkloadKind::A,
                keys,
                window + Duration::from_millis(200),
                threads,
            )
        });
        timeline.sample_for(window, || probe.counters(&counting.ops));
        let _ = worker.join();
    });

    println!("\n## {name}");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "t(s)", "kops/s", "ssdW MB/s", "ssdR MB/s", "pmemW MB/s"
    );
    for s in timeline.samples() {
        println!(
            "{:>6.1} {:>10.1} {:>12.1} {:>12.1} {:>12.1}",
            s.t_secs,
            s.ops_per_sec / 1e3,
            s.ssd_write_bps / 1e6,
            s.ssd_read_bps / 1e6,
            s.pmem_write_bps / 1e6
        );
    }
    println!(
        "summary: mean={:.1} kops/s  min(SLO)={:.1} kops/s  quiesced={}",
        timeline.mean_ops_per_sec() / 1e3,
        timeline.min_ops_per_sec() / 1e3,
        timeline.fully_quiesced()
    );
}

fn main() {
    let keys = count(DEFAULT_KEYS);
    let window = secs(10.0);
    println!("# Figure 7: throughput + device bandwidth over a {window:?} window");
    println!(
        "# keys={keys} value=4KB threads={} workload=50R/50W",
        threads()
    );

    {
        let kv = DStoreKv::new(dstore_default(keys), "DStore");
        let probe = DeviceProbe {
            pmem: Arc::clone(kv.store().pmem()),
            ssd: Arc::clone(kv.store().ssd()),
        };
        run_one("DStore", &kv, probe, keys, window);
    }
    {
        let kv = DStoreKv::new(
            build_dstore(CheckpointMode::Cow, LoggingMode::Logical, true, true, keys),
            "DStore (CoW)",
        );
        let probe = DeviceProbe {
            pmem: Arc::clone(kv.store().pmem()),
            ssd: Arc::clone(kv.store().ssd()),
        };
        run_one("DStore (CoW)", &kv, probe, keys, window);
    }
    {
        let (pool, ssd) = bench_devices((keys as u64) * 16 + 8192);
        let lsm = dstore_baselines::LsmStore::new(
            Arc::clone(&pool),
            Arc::clone(&ssd),
            dstore_baselines::lsm::LsmConfig::default(),
        );
        run_one(
            "PMEM-RocksDB",
            lsm.as_ref(),
            DeviceProbe { pmem: pool, ssd },
            keys,
            window,
        );
    }
    {
        let cfg = dstore_baselines::pagecache::PageCacheConfig::default();
        let (pool, ssd) = bench_devices(1 + cfg.pages as u64 * 64 + 1024);
        let mongo = dstore_baselines::PageCacheBTree::new(Arc::clone(&pool), Arc::clone(&ssd), cfg);
        run_one(
            "MongoDB-PM",
            mongo.as_ref(),
            DeviceProbe { pmem: pool, ssd },
            keys,
            window,
        );
    }
    {
        let pool = Arc::new(
            dstore_pmem::PoolBuilder::new(((keys * 8192) + (64 << 20)).next_power_of_two())
                .latency(dstore_pmem::LatencyModel::optane())
                .build()
                .unwrap(),
        );
        let ssd = Arc::new(dstore_ssd::SsdDevice::anon(64)); // unused by PMSE
        let pmse = dstore_baselines::UncachedStore::new(
            Arc::clone(&pool),
            dstore_baselines::uncached::UncachedConfig::default(),
        );
        run_one(
            "MongoDB-PMSE",
            pmse.as_ref(),
            DeviceProbe { pmem: pool, ssd },
            keys,
            window,
        );
    }
}
