//! **Figure 10** — Storage footprint with preloaded 4 KB objects.
//!
//! "We load two million objects into the system and then measure the
//! total space (DRAM, PMEM, and SSD) consumed by each system." (Count
//! scaled by `DSTORE_BENCH_SCALE`.) Expected shape: data footprints are
//! nearly identical across systems; metadata overheads differ —
//! MongoDB-PMSE smallest (no volatile cache), DStore next (up to three
//! metadata copies, allocated ad-hoc), PMEM-RocksDB and MongoDB-PM
//! largest (reserved caches).

use dstore_baselines::KvSystem;
use dstore_bench::*;

fn gb(bytes: u64) -> String {
    format!("{:.3}", bytes as f64 / 1e9)
}

fn row(name: &str, f: (u64, u64, u64), logical: u64) {
    let total = f.0 + f.1 + f.2;
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>8.2}",
        name,
        gb(f.0),
        gb(f.1),
        gb(f.2),
        gb(total),
        total as f64 / logical.max(1) as f64
    );
}

fn main() {
    let objects = count(100_000);
    let logical = (objects * VALUE_SIZE) as u64;
    println!("# Figure 10: storage footprint with {objects} 4KB objects (GB)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "system", "DRAM", "PMEM", "SSD", "total", "ampl."
    );

    {
        let kv = DStoreKv::new(dstore_default(objects), "DStore");
        preload(&kv, objects);
        kv.store().checkpoint_now();
        row("DStore", kv.footprint(), logical);
    }
    {
        let lsm = build_lsm(objects, true);
        preload(lsm.as_ref(), objects);
        row("PMEM-RocksDB", lsm.footprint(), logical);
    }
    {
        let mongo = build_pagecache(true);
        preload(mongo.as_ref(), objects);
        row("MongoDB-PM", mongo.footprint(), logical);
    }
    {
        let pmse = build_uncached(objects);
        preload(pmse.as_ref(), objects);
        row("MongoDB-PMSE", pmse.footprint(), logical);
    }
}
