//! **Figure 13** (companion experiment) — OE-parallel checkpoint apply.
//!
//! A/Bs the checkpoint backend at `replay_threads = 1` (the pre-parallel
//! serial apply) against `replay_threads = 4`: apply-phase wall time,
//! replayed records, and the *admission rate* each mode supports.
//!
//! Admission-rate methodology (same device-emulation caveat as fig12): on
//! a spin-emulated PMEM host — possibly 1-core — parallel wall-clock
//! speedups are not directly observable, so we report the serialized
//! occupancy the replay engine accounts for itself
//! (`ReplayStats::serialized_ns`): the whole loop in serial mode; record
//! grouping + B-tree write-lock *hold* time in parallel mode. `records ×
//! 1e9 / serialized_ns` is then the records/s bound one replay pipeline
//! admits — the figure-of-merit the paper's OE argument (§3.7) predicts
//! scales with shard parallelism.
//!
//! A second pass runs a log-pressure workload (tiny log, automatic
//! checkpoints) and reports log-full stalls: a faster-draining apply
//! phase means appends stall less.

use dstore::{DStore, DStoreConfig, LoggingMode};
use dstore_bench::*;
use dstore_workload::Workload;
use std::time::Instant;

/// One A/B leg: manual checkpoints over `rounds` put-waves of `keys`
/// multi-block objects. Returns (records, serialized_ns, groups,
/// fallbacks, apply_wall_ns).
fn apply_leg(threads: usize, keys: usize, rounds: u32) -> (u64, u64, u64, u64, u64) {
    let mut cfg = DStoreConfig::bench()
        .with_logging(LoggingMode::Logical)
        .with_auto_checkpoint(false)
        .with_replay_threads(threads);
    cfg.log_size = 32 << 20; // hold a whole wave per window
    cfg.shadow_size = (64 << 20).max(keys * 1536);
    cfg.ssd_pages = (keys as u64) * 24 + 8192;
    let store = DStore::create(cfg).expect("create bench store");
    let ctx = store.context();
    // 16 KB values: several pool blocks per record, so replay work is
    // dominated by per-shard allocation + metadata installs (the part
    // that parallelizes), not B-tree structural changes.
    let value = vec![0x5Au8; 4 * VALUE_SIZE];
    let mut apply_wall_ns = 0u64;
    for _ in 0..rounds {
        for i in 0..keys {
            ctx.put(&Workload::key_name(i as u64), &value).unwrap();
        }
        let t = Instant::now();
        store.checkpoint_now();
        apply_wall_ns += t.elapsed().as_nanos() as u64;
    }
    drop(ctx);
    let r = store.replay_stats();
    (
        r.records,
        r.serialized_ns,
        r.groups,
        r.serial_fallbacks,
        apply_wall_ns,
    )
}

/// Log-pressure leg: tiny log + automatic checkpoints; counts how often
/// appends hit a completely full log (the backpressure stall).
fn stall_leg(threads: usize, puts: usize) -> u64 {
    let mut cfg = DStoreConfig::bench()
        .with_logging(LoggingMode::Logical)
        .with_auto_checkpoint(true)
        .with_replay_threads(threads);
    cfg.log_size = 64 << 10;
    cfg.shadow_size = 64 << 20;
    cfg.ssd_pages = (puts as u64) * 8 + 8192;
    let store = DStore::create(cfg).expect("create bench store");
    // Slow the flush phase so the apply phase is what gates log drain —
    // the regime where a faster apply visibly reduces backpressure.
    store.inject_checkpoint_flush_stall(100_000_000);
    let ctx = store.context();
    let value = vec![0xA5u8; VALUE_SIZE];
    for i in 0..puts {
        ctx.put(&Workload::key_name((i % 4096) as u64), &value)
            .unwrap();
    }
    drop(ctx);
    store.wait_checkpoint_idle();
    store.stats().snapshot().log_full_stalls
}

fn main() {
    let keys = count(600);
    let rounds = 3u32;
    println!(
        "# Fig 13: OE-parallel checkpoint apply — {rounds} waves x {keys} puts of {} B",
        4 * VALUE_SIZE
    );
    println!(
        "{:<10} {:>9} {:>12} {:>8} {:>9} {:>12} {:>14}",
        "threads", "records", "apply(ms)", "groups", "fallback", "ser(ms)", "admit(rec/s)"
    );

    let mut rates = Vec::new();
    for threads in [1usize, 4] {
        // Best of 3: serialized-occupancy accounting is sub-millisecond,
        // so a single run is at the mercy of scheduler noise.
        let (records, ser_ns, groups, fallbacks, wall_ns) = (0..3)
            .map(|_| apply_leg(threads, keys, rounds))
            .min_by_key(|&(_, ser_ns, ..)| ser_ns)
            .unwrap();
        let rate = records as f64 * 1e9 / ser_ns.max(1) as f64;
        rates.push(rate);
        println!(
            "{:<10} {:>9} {:>12} {:>8} {:>9} {:>12} {:>14.0}",
            threads,
            records,
            ms(wall_ns),
            groups,
            fallbacks,
            ms(ser_ns),
            rate
        );
    }
    let speedup = rates[1] / rates[0];
    println!("\nadmission-rate speedup (4 threads / serial): {speedup:.1}x");
    assert!(
        speedup >= 2.0,
        "parallel apply must admit >= 2x the records/s of serial (got {speedup:.2}x)"
    );

    println!("\n== log-full stalls under pressure (64 KiB log, auto checkpoints, slow flush)");
    let puts = count(4000);
    for threads in [1usize, 4] {
        let stalls = stall_leg(threads, puts);
        println!("threads={threads:<2} puts={puts} log_full_stalls={stalls}");
    }
}
