//! **Table 4** — System recovery time.
//!
//! "We evaluate two cases: one with a normal shutdown and the other with
//! an unexpected crash just before the checkpoint process is complete
//! (the worst possible failure point). … we load two million 4 KB objects
//! into each system." (Object count scaled by `DSTORE_BENCH_SCALE`.)
//!
//! Expected shape: DStore's clean-shutdown recovery is *slower* than the
//! others (it reconstructs the whole volatile space up front rather than
//! faulting pages in on demand); crash recovery adds the checkpoint redo;
//! the uncached system recovers near-instantly.

use dstore_baselines::KvSystem;
use dstore_bench::*;
use dstore_workload::Workload;
use std::time::Instant;

fn main() {
    // The paper loads 2M objects; default scale loads 100k (adjust with
    // DSTORE_BENCH_SCALE).
    let objects = count(100_000);
    println!("# Table 4: recovery time (ms) after loading {objects} 4KB objects");
    println!(
        "{:<14} {:<10} {:>10} {:>10} {:>10}",
        "system", "shutdown", "metadata", "replay", "total"
    );

    // --- DStore, clean shutdown.
    {
        let store = dstore_default(objects);
        let kv = DStoreKv::new(store, "DStore");
        preload(&kv, objects);
        let img = kv.into_store().close();
        let t = Instant::now();
        let recovered = dstore::DStore::recover(img).expect("recover");
        let wall = t.elapsed();
        let r = recovered.recovery_report();
        println!(
            "{:<14} {:<10} {:>10} {:>10} {:>10}",
            "DStore",
            "clean",
            ms(r.metadata_ns),
            ms(r.replay_ns),
            ms(wall.as_nanos() as u64)
        );
        // Sanity: everything is there.
        assert_eq!(recovered.object_count(), objects as u64);
    }

    // --- DStore, crash during a checkpoint (worst case).
    {
        let store = build_dstore(
            dstore::CheckpointMode::Dipper,
            dstore::LoggingMode::Logical,
            true,
            false, // manual checkpoints: leave work for recovery
            objects,
        );
        let ctx = store.context();
        let value = vec![0xA5u8; VALUE_SIZE];
        // Load in three phases: checkpoint the first, start (and never
        // finish) a checkpoint covering the second, and leave the third
        // in the active log — so recovery exercises checkpoint redo,
        // volatile-space reconstruction, AND active-log replay.
        for i in 0..objects / 2 {
            ctx.put(&Workload::key_name(i as u64), &value).unwrap();
        }
        store.checkpoint_now();
        for i in objects / 2..objects * 9 / 10 {
            ctx.put(&Workload::key_name(i as u64), &value).unwrap();
        }
        store.begin_checkpoint_swap_only(); // checkpoint starts…
        for i in objects * 9 / 10..objects {
            ctx.put(&Workload::key_name(i as u64), &value).unwrap();
        }
        drop(ctx);
        // Serial vs OE-parallel active-log replay over the same durable
        // image: recover with 1 replay thread (redo + replay), then
        // crash the recovered store (its durable state is unchanged, so
        // the replay window is identical — recovery is idempotent) and
        // recover again with 4 threads. The replay column is the
        // apples-to-apples A/B; the redo only exists in the first leg.
        let base = store.config().clone();
        let mut img = store.crash(); // …and the checkpoint never completes.
        let mut first = true;
        for threads in [1usize, 4] {
            let img_t =
                dstore::CrashImage::reconfigure(img, base.clone().with_replay_threads(threads));
            let t = Instant::now();
            let recovered = dstore::DStore::recover(img_t).expect("recover");
            let wall = t.elapsed();
            let r = recovered.recovery_report();
            if first {
                assert!(r.redo_checkpoint);
            }
            let rate = r.replayed_records as f64 * 1e9 / r.replay_ns.max(1) as f64;
            println!(
                "{:<14} {:<10} {:>10} {:>10} {:>10}   ({} replayed, {:.0} rec/s)",
                format!("DStore rt={threads}"),
                if first { "crash" } else { "re-crash" },
                ms(r.metadata_ns),
                ms(r.replay_ns),
                ms(wall.as_nanos() as u64),
                r.replayed_records,
                rate,
            );
            assert_eq!(recovered.object_count(), objects as u64);
            first = false;
            img = recovered.crash();
        }
    }

    // --- MongoDB-PMSE proxy: inline persistence, recovery re-executes
    // in-flight transactions only (near instant).
    {
        let pmse = build_uncached(1024);
        for i in 0..1024u64 {
            pmse.put(&Workload::key_name(i), &[0u8; 128]);
        }
        let t = Instant::now();
        // Recovery = undo-log scan (bounded) — no data movement.
        pmse.quiesce();
        let wall = t.elapsed();
        println!(
            "{:<14} {:<10} {:>10} {:>10} {:>10}",
            "MongoDB-PMSE",
            "crash",
            ms(wall.as_nanos() as u64),
            ms(0),
            ms(wall.as_nanos() as u64)
        );
    }

    println!(
        "\nnote: MongoDB-PM / PMEM-RocksDB recovery (journal/WAL replay over a\n\
         page cache) is architecture-equivalent to DStore's replay column but\n\
         skips the volatile-space reconstruction — the paper's Table 4 shows\n\
         them between PMSE and DStore; see EXPERIMENTS.md."
    );
}

/// Helper: unwrap the adapter.
trait IntoStore {
    fn into_store(self) -> dstore::DStore;
}
impl IntoStore for DStoreKv {
    fn into_store(self) -> dstore::DStore {
        self.into_inner()
    }
}
