//! **Figure 9** — Effect of optimizations on write latency.
//!
//! "We first evaluate the baseline design, adding optimizations one-by-one
//! and measuring performance again. The naïve baseline uses ARIES-style
//! physical logging, used in NV-HTM and DudeTM, with CoW checkpoints."
//! Expected shape: physical→logical improves *average* latency (~21 %
//! avg, ~15 % tail in the paper); +DIPPER improves *tail* latency
//! dramatically (~7.6×) while barely moving the average; +OE shaves the
//! remaining synchronization overhead at high concurrency.

use dstore::{CheckpointMode, LoggingMode};
use dstore_bench::*;
use dstore_workload::WorkloadKind;

fn main() {
    let keys = count(DEFAULT_KEYS);
    let duration = secs(6.0);
    let threads = threads();
    println!("# Figure 9: ablation — write latency (us), 50R/50W, threads={threads}");
    println!("{:<34} {:>12} {:>12}", "configuration", "average", "p9999");

    let configs: [(&str, CheckpointMode, LoggingMode, bool); 4] = [
        (
            "naive (physical log + CoW)",
            CheckpointMode::Cow,
            LoggingMode::Physical,
            false,
        ),
        (
            "+logical (logical log + CoW)",
            CheckpointMode::Cow,
            LoggingMode::Logical,
            false,
        ),
        (
            "+DIPPER (decoupled ckpt)",
            CheckpointMode::Dipper,
            LoggingMode::Logical,
            false,
        ),
        (
            "+OE (full DStore)",
            CheckpointMode::Dipper,
            LoggingMode::Logical,
            true,
        ),
    ];

    for (name, ckpt, logging, oe) in configs {
        let kv = DStoreKv::new(build_dstore(ckpt, logging, oe, true, keys), "DStore");
        preload(&kv, keys);
        let r = run_ycsb(&kv, WorkloadKind::A, keys, duration, threads);
        println!(
            "{name:<34} {:>12} {:>12}",
            us(r.update_hist.mean() as u64),
            us(r.update_hist.percentile(99.99))
        );
    }
}
