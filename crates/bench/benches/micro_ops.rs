//! Criterion micro-benchmarks for DStore's building blocks: log append +
//! commit, B-tree ops, arena allocation, PMEM flush primitives, and the
//! OE-vs-serialized frontend (the §5.3 "<300 ns in-lock metadata work"
//! claim).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dstore::{DStore, DStoreConfig};
use dstore_arena::{Arena, DramMemory};
use dstore_dipper::{DipperConfig, OpLog, PmemLayout};
use dstore_index::BTreeHandle;
use dstore_pmem::PmemPool;
use std::sync::Arc;

fn bench_log(c: &mut Criterion) {
    let cfg = DipperConfig {
        log_size: 64 << 20,
        shadow_size: 64 << 10,
        ..Default::default()
    };
    let layout = PmemLayout::new(&cfg);
    let pool = Arc::new(PmemPool::anon(layout.total));
    let log = OpLog::create(pool, layout);
    let mut g = c.benchmark_group("oplog");
    g.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    g.bench_function("append_commit_32B", |b| {
        b.iter(|| {
            i += 1;
            let name = format!("obj{}", i % 512);
            let r = match log.try_append(1, name.as_bytes(), &i.to_le_bytes()) {
                Ok(r) => r,
                Err(_) => {
                    // Criterion can outrun any fixed-size log; recycle via
                    // a swap (no checkpointer attached — records are
                    // measurement fodder).
                    log.swap(|| {});
                    log.try_append(1, name.as_bytes(), &i.to_le_bytes())
                        .unwrap()
                }
            };
            log.commit(r.handle);
        })
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let arena = Arena::create(DramMemory::new(256 << 20));
    let tree = BTreeHandle::create(&arena);
    for i in 0..100_000u64 {
        tree.insert(format!("user{i:012}").as_bytes(), i);
    }
    let mut g = c.benchmark_group("btree_100k");
    let mut i = 0u64;
    g.bench_function("get", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            tree.get(format!("user{i:012}").as_bytes())
        })
    });
    g.bench_function("insert_replace", |b| {
        b.iter(|| {
            i = (i + 7919) % 100_000;
            tree.insert(format!("user{i:012}").as_bytes(), i)
        })
    });
    g.finish();
}

fn bench_arena(c: &mut Criterion) {
    let arena = Arena::create(DramMemory::new(256 << 20));
    let mut g = c.benchmark_group("arena");
    g.bench_function("alloc_free_128B", |b| {
        b.iter(|| {
            let off = arena.alloc_block(128);
            arena.free_block(off, 128);
        })
    });
    g.finish();
}

fn bench_pmem(c: &mut Criterion) {
    let pool = PmemPool::strict(1 << 20);
    let mut g = c.benchmark_group("pmem_strict");
    g.bench_function("persist_one_line", |b| {
        b.iter(|| {
            pool.write_bytes(0, &[1u8; 48]);
            pool.persist(0, 48);
        })
    });
    g.finish();
}

fn bench_store_ops(c: &mut Criterion) {
    // Functional-mode store (no device latency): measures pure software
    // overhead — the paper's "~10%" claim rests on this being small
    // against the ~9 µs NVMe write.
    let cfg = DStoreConfig {
        log_size: 64 << 20,
        ssd_pages: 32 * 1024,
        ..Default::default()
    };
    let store = DStore::create(cfg).unwrap();
    let ctx = store.context();
    let value = vec![0u8; 4096];
    for i in 0..1024 {
        ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
    }
    let mut g = c.benchmark_group("dstore_software_path");
    g.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    g.bench_function("put_4k_update", |b| {
        b.iter(|| {
            i = (i + 1) % 1024;
            ctx.put(format!("k{i}").as_bytes(), &value).unwrap()
        })
    });
    g.bench_function("get_4k", |b| {
        b.iter(|| {
            i = (i + 1) % 1024;
            ctx.get(format!("k{i}").as_bytes()).unwrap()
        })
    });
    g.finish();

    // OE ablation: same ops with the global serializing lock.
    let cfg = DStoreConfig {
        log_size: 64 << 20,
        ssd_pages: 32 * 1024,
        ..Default::default()
    }
    .with_oe(false);
    let store = DStore::create(cfg).unwrap();
    let ctx = store.context();
    for i in 0..1024 {
        ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
    }
    let mut g = c.benchmark_group("dstore_software_path_no_oe");
    let mut i = 0u64;
    g.bench_function("put_4k_update", |b| {
        b.iter(|| {
            i = (i + 1) % 1024;
            ctx.put(format!("k{i}").as_bytes(), &value).unwrap()
        })
    });
    g.finish();
}

fn bench_fence_accounting(c: &mut Criterion) {
    // The ordering-tax budget (minimally-ordered durability): count PMEM
    // flush and fence calls per put via the telemetry counters, with
    // epoch-batched durability on and off. The epoch-on budget is the
    // acceptance bar (< 2 flushes and < 2 fences per put, amortized
    // across the combiner batch); the epoch-off leg records the
    // per-record floor and asserts it does not regress, keeping the
    // serialized baseline honest. Violations panic, failing the bench —
    // CI runs this group as the fence-budget job.
    for epoch in [true, false] {
        let cfg = DStoreConfig {
            log_size: 64 << 20,
            ssd_pages: 32 * 1024,
            ..Default::default()
        }
        .with_durability_epoch(epoch);
        let store = DStore::create(cfg).unwrap();
        let ctx = store.context();
        let value = vec![0u8; 4096];
        for i in 0..1024 {
            ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
        }
        let counter = |name: &str| {
            store
                .telemetry_snapshot()
                .expect("telemetry on")
                .counter_total(name)
        };

        // Accounting pass: a fixed op count outside the timed loop so the
        // ratios are exact, not warm-up-polluted.
        const OPS: u64 = 2000;
        let (f0, s0) = (
            counter("dstore_pmem_flushes_total"),
            counter("dstore_pmem_fences_total"),
        );
        for i in 0..OPS {
            ctx.put(format!("k{}", i % 1024).as_bytes(), &value)
                .unwrap();
        }
        let flushes_per_op = (counter("dstore_pmem_flushes_total") - f0) as f64 / OPS as f64;
        let fences_per_op = (counter("dstore_pmem_fences_total") - s0) as f64 / OPS as f64;
        println!(
            "fence_accounting: durability_epoch={epoch} flushes/op={flushes_per_op:.3} \
             fences/op={fences_per_op:.3} dedup_lines={} elided_lines={}",
            counter("dstore_pmem_dedup_lines_total"),
            counter("dstore_pmem_elided_lines_total"),
        );
        if epoch {
            assert!(
                flushes_per_op < 2.0 && fences_per_op < 2.0,
                "epoch-on fence budget violated: {flushes_per_op:.3} flushes/op, \
                 {fences_per_op:.3} fences/op (budget: < 2 of each)"
            );
        } else {
            // The recorded per-record floor is 2 flushes / 2 fences per
            // put (publish flush+fence, commit flush+fence) plus header
            // and swap noise; regression bar with headroom.
            assert!(
                flushes_per_op < 4.0 && fences_per_op < 3.0,
                "epoch-off baseline regressed: {flushes_per_op:.3} flushes/op, \
                 {fences_per_op:.3} fences/op (floor: ~2/2)"
            );
        }

        let mut g = c.benchmark_group(if epoch {
            "fence_accounting_epoch_on"
        } else {
            "fence_accounting_epoch_off"
        });
        g.throughput(Throughput::Elements(1));
        let mut i = 0u64;
        g.bench_function("put_4k_update", |b| {
            b.iter(|| {
                i = (i + 1) % 1024;
                ctx.put(format!("k{i}").as_bytes(), &value).unwrap()
            })
        });
        g.finish();
    }
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The always-on observability budget: identical software-path ops
    // with (a) everything off, (b) per-op histograms on but the flight
    // recorder off, (c) histograms plus the flight recorder at its
    // production setting (sample 1 in 1024, 1 ms SLO retention), and
    // (d) all of (c) plus the crash-persistent black box. Compare the
    // groups' medians: `telemetry_on` vs `_off` is the <5 % metrics
    // budget; `tracing_on` vs `telemetry_on` is the ≤2 % tracing
    // budget; `blackbox_on` vs `tracing_on` is the ≤2 % black-box
    // budget (one relaxed fetch_max per mutation, a persisted
    // heartbeat every 1024th, PMEM trace writes only on retained
    // samples).
    enum Mode {
        Off,
        Telemetry,
        Tracing,
        BlackBox,
    }
    for mode in [Mode::Off, Mode::Telemetry, Mode::Tracing, Mode::BlackBox] {
        let cfg = DStoreConfig {
            log_size: 64 << 20,
            ssd_pages: 32 * 1024,
            blackbox: if matches!(mode, Mode::BlackBox) {
                dstore::BlackBoxConfig::on()
            } else {
                dstore::BlackBoxConfig::default()
            },
            ..Default::default()
        }
        .with_telemetry(!matches!(mode, Mode::Off))
        .with_trace(dstore_telemetry::TraceConfig {
            enabled: matches!(mode, Mode::Tracing | Mode::BlackBox),
            ..dstore_telemetry::TraceConfig::default()
        });
        let store = DStore::create(cfg).unwrap();
        let ctx = store.context();
        let value = vec![0u8; 4096];
        for i in 0..1024 {
            ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
        }
        let mut g = c.benchmark_group(match mode {
            Mode::Off => "dstore_telemetry_off",
            Mode::Telemetry => "dstore_telemetry_on",
            Mode::Tracing => "dstore_tracing_on",
            Mode::BlackBox => "dstore_blackbox_on",
        });
        g.throughput(Throughput::Elements(1));
        let mut i = 0u64;
        g.bench_function("put_4k_update", |b| {
            b.iter(|| {
                i = (i + 1) % 1024;
                ctx.put(format!("k{i}").as_bytes(), &value).unwrap()
            })
        });
        g.bench_function("get_4k", |b| {
            b.iter(|| {
                i = (i + 1) % 1024;
                ctx.get(format!("k{i}").as_bytes()).unwrap()
            })
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_log, bench_btree, bench_arena, bench_pmem, bench_store_ops,
    bench_fence_accounting, bench_telemetry_overhead
}
criterion_main!(benches);
