//! **Figure 14** (extension) — Network front-door scaling: ops/s and
//! tail latency vs. simulated connection count.
//!
//! Open-loop loopback load against a live `dstore-server` (epoll
//! backend): N TCP connections each keep a fixed pipeline of requests
//! in flight, so a slow response does not stop the flow of new
//! requests on other connections — the server, not the client, decides
//! where queueing shows up. Each request is timestamped at *submit*,
//! so the reported client latency includes every queueing stage
//! (socket, net_queue, executor), the open-loop treatment that closed
//! loops famously understate (coordinated omission).
//!
//! For each connection count a **fresh** store + server is started, so
//! the server-side histograms and flight-recorder traces are per-cell.
//! After each cell we pull `telemetry_snapshot` *over the wire* and
//! report:
//!
//! * server-side residency p9999 (`dstore_server_op_latency_ns`), and
//! * the Table-3-style tail attribution with the new `net_queue`
//!   segment separated from the PMEM segments (`log_append`,
//!   `log_commit`, …) — "waited behind other connections" vs. "the
//!   device was slow", from the same sampled traces.
//!
//! Host note: connection counts are scaled by `DSTORE_BENCH_SCALE`; on
//! a single-core host the absolute ops/s is modest (client threads,
//! server loop, executors, and spin-injected device waits all share
//! one core) — the figure's signal is the *shape*: ops/s holding while
//! p9999 grows with connection count, and net_queue absorbing the
//! growth.

use dstore::DStoreConfig;
use dstore_bench::{count, scale, secs};
use dstore_protocol::{DStoreClient, Request, Response};
use dstore_server::{Backend, Server, ServerConfig};
use dstore_shard::{ShardedConfig, ShardedStore};
use dstore_telemetry::{now_ns, LatencyHistogram, TailAttribution, SEGMENT_NAMES};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: u32 = 4;
const VALUE_SIZE: usize = 4096;
/// Requests each connection keeps in flight.
const PIPELINE: usize = 4;

struct CellReport {
    conns: usize,
    ops_per_s: f64,
    client: LatencyHistogram,
    server_p9999_us: f64,
    busy: u64,
    attribution: Option<TailAttribution>,
}

/// Drives `conns` connections split over `driver_threads` threads for
/// `duration`, then collects the server's own view over the wire.
fn run_cell(conns: usize, driver_threads: usize, duration: Duration, keys: usize) -> CellReport {
    let mut base = DStoreConfig::bench();
    // Dense sampling so the p99 tail cut has armed traces on both sides
    // (SLO-retained outliers carry no segment detail by design).
    base.trace.sample_every = 64;
    let store = Arc::new(ShardedStore::create(ShardedConfig::new(SHARDS, base)).unwrap());
    let server = Server::start(
        Arc::clone(&store),
        ServerConfig {
            backend: Backend::Epoll,
            max_connections: conns + 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Preload so gets hit. Bounded window with Busy retry: an
    // unthrottled `keys`-deep burst would (correctly) trip the
    // admission backpressure this server exists to provide.
    {
        let mut c = DStoreClient::connect(addr).unwrap();
        let value = vec![0x5A; VALUE_SIZE];
        let mut pending = std::collections::VecDeque::new();
        let mut i = 0;
        while i < keys || !pending.is_empty() {
            while i < keys && pending.len() < 64 {
                let id = c.submit(&Request::Put {
                    key: key(i),
                    value: value.clone(),
                });
                pending.push_back((id, i));
                i += 1;
            }
            let (id, k) = pending.pop_front().unwrap();
            match c.wait(id) {
                Ok(Response::Ok) => {}
                Err(dstore::DsError::Busy) => {
                    let id = c.submit(&Request::Put {
                        key: key(k),
                        value: value.clone(),
                    });
                    pending.push_back((id, k));
                }
                other => panic!("preload: {other:?}"),
            }
        }
    }

    let stop = Instant::now() + duration;
    let per_thread = conns.div_ceil(driver_threads);
    let drivers: Vec<_> = (0..driver_threads)
        .map(|t| {
            let my_conns = per_thread.min(conns.saturating_sub(t * per_thread));
            std::thread::spawn(move || drive(addr, t, my_conns, stop, keys))
        })
        .collect();

    let client = LatencyHistogram::new();
    let mut responses = 0u64;
    let mut busy = 0u64;
    let started = Instant::now();
    for d in drivers {
        let (hist, n, b) = d.join().unwrap();
        client.merge(&hist);
        responses += n;
        busy += b;
    }
    let wall = started.elapsed().as_secs_f64();

    // The server's own view, fetched over the same protocol.
    let mut c = DStoreClient::connect(addr).unwrap();
    let snap = c.telemetry_snapshot().unwrap();
    let server_hist = snap.merged_histogram("dstore_server_op_latency_ns");
    let traces = snap.all_traces("dstore_op_traces");
    let attribution = (!traces.is_empty()).then(|| TailAttribution::from_traces(&traces, 99.0));
    server.shutdown();

    CellReport {
        conns,
        ops_per_s: responses as f64 / wall.max(1e-9),
        client,
        server_p9999_us: server_hist.percentile(99.99) as f64 / 1_000.0,
        busy,
        attribution,
    }
}

fn key(i: usize) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

/// One driver thread: `conns` connections, each with a fixed pipeline.
/// Submit timestamps ride along so latency covers all queueing.
fn drive(
    addr: std::net::SocketAddr,
    thread_id: usize,
    conns: usize,
    stop: Instant,
    keys: usize,
) -> (LatencyHistogram, u64, u64) {
    let hist = LatencyHistogram::new();
    let mut responses = 0u64;
    let mut busy = 0u64;
    let mut rng = 0x9E37_79B9_u64.wrapping_mul(thread_id as u64 + 1) | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let value = vec![0xA5u8; VALUE_SIZE];

    struct ConnState {
        client: DStoreClient,
        inflight: std::collections::VecDeque<(u64, u64)>, // (req id, submit ns)
    }
    let mut pool: Vec<ConnState> = (0..conns)
        .filter_map(|_| {
            let mut client = DStoreClient::connect(addr).ok()?;
            client
                .set_read_timeout(Some(Duration::from_secs(30)))
                .ok()?;
            Some(ConnState {
                client,
                inflight: std::collections::VecDeque::new(),
            })
        })
        .collect();
    if pool.is_empty() {
        return (hist, 0, 0);
    }

    loop {
        let now = Instant::now();
        let done = now >= stop;
        for cs in &mut pool {
            // Refill the pipeline (only while the clock runs).
            while !done && cs.inflight.len() < PIPELINE {
                let k = key((next() as usize) % keys);
                let req = if next() % 2 == 0 {
                    Request::Put {
                        key: k,
                        value: value.clone(),
                    }
                } else {
                    Request::Get { key: k }
                };
                let id = cs.client.submit(&req);
                cs.inflight.push_back((id, now_ns()));
            }
            let _ = cs.client.flush();
            // Reap the oldest response; keep the rest pipelined.
            let drain = if done { cs.inflight.len() } else { 1 };
            for _ in 0..drain {
                let Some((id, t0)) = cs.inflight.pop_front() else {
                    break;
                };
                match cs.client.wait(id) {
                    Ok(_) => {
                        hist.record(now_ns().saturating_sub(t0));
                        responses += 1;
                    }
                    Err(dstore::DsError::Busy) => busy += 1,
                    Err(_) => break,
                }
            }
        }
        if done {
            return (hist, responses, busy);
        }
    }
}

fn main() {
    let duration = secs(3.0).max(Duration::from_millis(300));
    let keys = count(2000).max(64);
    let driver_threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
    let conn_counts: Vec<usize> = [64usize, 256, 1024]
        .iter()
        .map(|&c| ((c as f64 * scale()) as usize).max(4))
        .collect();

    println!(
        "== Figure 14: server scaling, {SHARDS} shards, epoll backend, \
         pipeline depth {PIPELINE}, 50/50 put/get {VALUE_SIZE} B, \
         {driver_threads} driver threads, {:.1}s per cell (scale {})",
        duration.as_secs_f64(),
        scale(),
    );
    println!(
        "{:>7} {:>12} {:>10} {:>10} {:>11} {:>13} {:>7}",
        "conns", "ops/s", "p50(us)", "p99(us)", "p9999(us)", "srv p9999(us)", "busy"
    );

    let mut last = None;
    for &conns in &conn_counts {
        let r = run_cell(conns, driver_threads, duration, keys);
        let (p50, p99, _p999, p9999) = r.client.paper_percentiles();
        println!(
            "{:>7} {:>12.0} {:>10.0} {:>10.0} {:>11.0} {:>13.0} {:>7}",
            r.conns,
            r.ops_per_s,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            p9999 as f64 / 1e3,
            r.server_p9999_us,
            r.busy,
        );
        last = Some(r);
    }

    // Tail attribution for the heaviest cell: net_queue vs the PMEM
    // segments, from the store's own sampled traces, fetched remotely.
    if let Some(report) = last.and_then(|r| r.attribution) {
        println!("\n-- tail attribution at the largest connection count (p99 cut) --");
        println!("{}", report.render());
        let net_queue = SEGMENT_NAMES
            .iter()
            .position(|&n| n == "net_queue")
            .expect("net_queue segment");
        println!(
            "net_queue share of tail op time: {:.1}% (tail mean {} us vs body mean {} us)",
            100.0 * report.tail.seg_ns[net_queue] as f64 / report.tail.total_ns.max(1) as f64,
            report.tail.mean_ns() / 1_000,
            report.body.mean_ns() / 1_000,
        );
    } else {
        println!("\n(no traces retained — trace sampling disabled?)");
    }
}
