//! **Figure 6** — Metadata overhead of a 4 KB file write.
//!
//! "We measure the metadata overhead of 4 KB writes to a file for each
//! system" — DStore vs the PMEM-aware DAX filesystems. Expected shape:
//! DStore fastest (DRAM metadata + one compact logical record), then
//! NOVA, then xfs-DAX, then ext4-DAX (block journaling).

use dstore_baselines::{DaxFs, FsKind};
use dstore_bench::*;
use dstore_pmem::{LatencyModel, PoolBuilder};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let iters = count(50_000).max(1000);
    println!("# Figure 6: metadata overhead per 4KB file write (ns)");
    println!("# iterations={iters}, Optane-calibrated PMEM latency model");
    println!("{:<12} {:>14} {:>12}", "system", "ns/update", "vs DStore");

    let pool = Arc::new(
        PoolBuilder::new(64 << 20)
            .latency(LatencyModel::optane())
            .build()
            .unwrap(),
    );

    let mut baseline = None;
    for kind in FsKind::all() {
        let fs = DaxFs::new(kind, Arc::clone(&pool));
        // Warm up.
        for _ in 0..100 {
            fs.metadata_update();
        }
        let t = Instant::now();
        for _ in 0..iters {
            fs.metadata_update();
        }
        let per_op = t.elapsed().as_nanos() as u64 / iters as u64;
        let base = *baseline.get_or_insert(per_op);
        println!(
            "{:<12} {:>14} {:>11.2}x",
            kind.name(),
            per_op,
            per_op as f64 / base as f64
        );
    }
}
