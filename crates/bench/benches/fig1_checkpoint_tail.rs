//! **Figure 1** — Tail latency overhead of checkpoints.
//!
//! "We compare the tail latency of writes for a full-subscription 50 %
//! read, 50 % write workload" with and without checkpoints, for
//! PMEM-RocksDB, MongoDB-PM, and DStore (CoW). Expected shape: disabling
//! checkpoints lowers p999/p9999 dramatically for all cached systems.

use dstore::{CheckpointMode, LoggingMode};
use dstore_bench::*;
use dstore_workload::WorkloadKind;

fn main() {
    let keys = count(DEFAULT_KEYS);
    let duration = secs(6.0);
    let threads = threads();
    println!("# Figure 1: write tail latency with/without checkpoints");
    println!("# keys={keys} value=4KB threads={threads} window={duration:?} workload=50R/50W");
    percentile_header("write (update) latency");

    for checkpoints in [true, false] {
        let suffix = if checkpoints { "+ckpt" } else { "-ckpt" };

        let lsm = build_lsm(keys, checkpoints);
        preload(lsm.as_ref(), keys);
        let r = run_ycsb(lsm.as_ref(), WorkloadKind::A, keys, duration, threads);
        percentile_row(&format!("PMEM-RocksDB {suffix}"), &r.update_hist);

        let mongo = build_pagecache(checkpoints);
        preload(mongo.as_ref(), keys);
        let r = run_ycsb(mongo.as_ref(), WorkloadKind::A, keys, duration, threads);
        percentile_row(&format!("MongoDB-PM {suffix}"), &r.update_hist);

        let cow = DStoreKv::new(
            build_dstore(
                CheckpointMode::Cow,
                LoggingMode::Logical,
                true,
                checkpoints,
                keys,
            ),
            "DStore (CoW)",
        );
        preload(&cow, keys);
        let r = run_ycsb(&cow, WorkloadKind::A, keys, duration, threads);
        percentile_row(&format!("DStore (CoW) {suffix}"), &r.update_hist);
    }

    // Footnote 1 of the paper: DStore with DIPPER does not suffer the
    // checkpoint tail-latency overhead at all.
    let dipper = DStoreKv::new(dstore_default(keys), "DStore");
    preload(&dipper, keys);
    let r = run_ycsb(&dipper, WorkloadKind::A, keys, duration, threads);
    percentile_row("DStore (DIPPER) +ckpt", &r.update_hist);
}
