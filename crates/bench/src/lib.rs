//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every figure/table of the paper's §5 has a `benches/` target built on
//! these helpers. Each target prints the same rows/series the paper
//! reports; EXPERIMENTS.md records paper-vs-measured.
//!
//! Environment knobs:
//!
//! * `DSTORE_BENCH_SCALE` — multiplies run durations and object counts
//!   (default 1.0; the defaults keep a full `cargo bench` run to
//!   minutes).
//! * `DSTORE_BENCH_THREADS` — client threads ("full subscription");
//!   defaults to 2× the available cores, min 2 (device waits are
//!   spin-injected, so oversubscription approximates overlap on small
//!   hosts).

use dstore::{CheckpointMode, DStore, DStoreConfig, DsError, LoggingMode};
use dstore_baselines::{
    lsm::LsmConfig, pagecache::PageCacheConfig, uncached::UncachedConfig, KvSystem, LsmStore,
    PageCacheBTree, UncachedStore,
};
use dstore_pmem::stats::PmemSnapshot;
use dstore_pmem::{LatencyModel, PmemPool, PoolBuilder};
use dstore_shard::{SchedulerConfig, SchedulerMode, ShardedConfig, ShardedCtx, ShardedStore};
use dstore_ssd::{SsdDevice, SsdLatency, SsdSnapshot};
use dstore_workload::{
    run_closed_loop, LatencyHistogram, RunOptions, RunReport, Workload, WorkloadKind, YcsbOp,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Scale factor from `DSTORE_BENCH_SCALE`.
pub fn scale() -> f64 {
    std::env::var("DSTORE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Client threads from `DSTORE_BENCH_THREADS`.
pub fn threads() -> usize {
    std::env::var("DSTORE_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            (cores * 2).max(2)
        })
}

/// A duration scaled by [`scale`].
pub fn secs(base: f64) -> Duration {
    Duration::from_secs_f64(base * scale())
}

/// An object count scaled by [`scale`].
pub fn count(base: usize) -> usize {
    ((base as f64) * scale()) as usize
}

// ----------------------------------------------------------------------
// system construction

/// Key space used by the YCSB benches.
pub const DEFAULT_KEYS: usize = 20_000;
/// The paper's operation size.
pub const VALUE_SIZE: usize = 4096;

/// Builds a benchmark-mode DStore with the given architecture knobs.
pub fn build_dstore(
    checkpoint: CheckpointMode,
    logging: LoggingMode,
    oe: bool,
    auto_checkpoint: bool,
    keys: usize,
) -> DStore {
    let mut cfg = DStoreConfig::bench()
        .with_checkpoint(checkpoint)
        .with_logging(logging)
        .with_oe(oe)
        .with_auto_checkpoint(auto_checkpoint);
    cfg.log_size = if auto_checkpoint { 4 << 20 } else { 512 << 20 };
    cfg.shadow_size = (64 << 20).max(keys * 1536);
    cfg.ssd_pages = (keys as u64) * 4 + 8192;
    DStore::create(cfg).expect("create bench store")
}

/// The standard DStore instance (DIPPER + logical + OE).
pub fn dstore_default(keys: usize) -> DStore {
    build_dstore(
        CheckpointMode::Dipper,
        LoggingMode::Logical,
        true,
        true,
        keys,
    )
}

/// Fresh bench-latency devices for a baseline proxy.
pub fn bench_devices(ssd_pages: u64) -> (Arc<PmemPool>, Arc<SsdDevice>) {
    let pool = Arc::new(
        PoolBuilder::new(64 << 20)
            .latency(LatencyModel::optane())
            .build()
            .expect("pmem pool"),
    );
    let ssd = Arc::new(SsdDevice::anon(ssd_pages).with_latency(SsdLatency::p4800x()));
    (pool, ssd)
}

/// Builds the PMEM-RocksDB proxy (checkpoints/compaction on or off).
pub fn build_lsm(keys: usize, checkpoints: bool) -> Arc<LsmStore> {
    let (pool, ssd) = bench_devices((keys as u64) * 16 + 8192);
    let cfg = if checkpoints {
        LsmConfig::default()
    } else {
        LsmConfig {
            memtable_bytes: usize::MAX / 2,
            compact_at: usize::MAX / 2,
            stall_at: usize::MAX / 2,
            ..Default::default()
        }
    };
    LsmStore::new(pool, ssd, cfg)
}

/// Builds the MongoDB-PM proxy (checkpoints on or off).
pub fn build_pagecache(checkpoints: bool) -> Arc<PageCacheBTree> {
    let cfg = if checkpoints {
        PageCacheConfig::default()
    } else {
        PageCacheConfig {
            checkpoint_every: u64::MAX,
            ..Default::default()
        }
    };
    let (pool, ssd) = bench_devices(1 + cfg.pages as u64 * 64 + 1024);
    PageCacheBTree::new(pool, ssd, cfg)
}

/// Builds the MongoDB-PMSE proxy.
pub fn build_uncached(keys: usize) -> Arc<UncachedStore> {
    let pool = Arc::new(
        PoolBuilder::new(((keys * 8192) + (64 << 20)).next_power_of_two())
            .latency(LatencyModel::optane())
            .build()
            .expect("pmem pool"),
    );
    UncachedStore::new(pool, UncachedConfig::default())
}

// ----------------------------------------------------------------------
// DStore ↔ KvSystem adapter

/// Wraps a [`DStore`] as a [`KvSystem`] for uniform benchmarking.
pub struct DStoreKv {
    store: DStore,
    label: &'static str,
}

impl DStoreKv {
    /// Wraps `store` with a display label.
    pub fn new(store: DStore, label: &'static str) -> Self {
        Self { store, label }
    }

    /// The wrapped store.
    pub fn store(&self) -> &DStore {
        &self.store
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> DStore {
        self.store
    }
}

impl KvSystem for DStoreKv {
    fn name(&self) -> &'static str {
        self.label
    }
    fn put(&self, key: &[u8], value: &[u8]) {
        self.store
            .context()
            .put(key, value)
            .expect("bench put failed");
    }
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        match self.store.context().get(key) {
            Ok(v) => Some(v),
            Err(DsError::NotFound) => None,
            Err(e) => panic!("bench get failed: {e}"),
        }
    }
    fn delete(&self, key: &[u8]) {
        let _ = self.store.context().delete(key);
    }
    fn quiesce(&self) {
        self.store.wait_checkpoint_idle();
    }
    fn footprint(&self) -> (u64, u64, u64) {
        let f = self.store.footprint();
        (f.dram_bytes, f.pmem_bytes, f.ssd_bytes)
    }
}

/// Builds a benchmark-mode [`ShardedStore`]: `shards` logical+OE
/// instances with the given per-shard checkpoint engine, each sized for
/// its slice of `keys`, checkpointed by the given scheduler mode.
pub fn build_sharded(
    shards: u32,
    keys: usize,
    ckpt: CheckpointMode,
    mode: SchedulerMode,
) -> ShardedStore {
    let per_shard = keys / shards as usize + 1;
    let mut base = DStoreConfig::bench()
        .with_checkpoint(ckpt)
        .with_logging(LoggingMode::Logical)
        .with_oe(true)
        .with_auto_checkpoint(true);
    // Logical log records are ~48 B (metadata only; values go straight
    // to the data plane), so a small log keeps the checkpoint period in
    // the hundreds of milliseconds — several checkpoints per bench run,
    // which is what the scheduler comparison needs.
    base.log_size = 256 << 10;
    base.shadow_size = (16 << 20).max(per_shard * 1536);
    base.ssd_pages = (per_shard as u64) * 8 + 8192;
    ShardedStore::create(
        ShardedConfig::new(shards, base).with_scheduler(SchedulerConfig::new(mode)),
    )
    .expect("create sharded bench store")
}

/// Wraps a [`ShardedStore`] as a [`KvSystem`] (Figure 11).
pub struct ShardedKv {
    store: ShardedStore,
    ctx: ShardedCtx,
    label: &'static str,
}

impl ShardedKv {
    /// Wraps `store` with a display label.
    pub fn new(store: ShardedStore, label: &'static str) -> Self {
        let ctx = store.context();
        Self { store, ctx, label }
    }

    /// The wrapped store.
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }
}

impl KvSystem for ShardedKv {
    fn name(&self) -> &'static str {
        self.label
    }
    fn put(&self, key: &[u8], value: &[u8]) {
        self.ctx.put(key, value).expect("bench put failed");
    }
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        match self.ctx.get(key) {
            Ok(v) => Some(v),
            Err(DsError::NotFound) => None,
            Err(e) => panic!("bench get failed: {e}"),
        }
    }
    fn delete(&self, key: &[u8]) {
        let _ = self.ctx.delete(key);
    }
    fn quiesce(&self) {
        self.store.wait_checkpoint_idle();
    }
    fn footprint(&self) -> (u64, u64, u64) {
        let f = self.store.footprint();
        (f.dram_bytes, f.pmem_bytes, f.ssd_bytes)
    }
}

/// Counts completed ops around an inner system (timeline probes).
pub struct CountingKv<'a> {
    inner: &'a dyn KvSystem,
    /// Completed operations.
    pub ops: AtomicU64,
}

impl<'a> CountingKv<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a dyn KvSystem) -> Self {
        Self {
            inner,
            ops: AtomicU64::new(0),
        }
    }
}

impl KvSystem for CountingKv<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn put(&self, key: &[u8], value: &[u8]) {
        self.inner.put(key, value);
        self.ops.fetch_add(1, Ordering::Relaxed);
    }
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let v = self.inner.get(key);
        self.ops.fetch_add(1, Ordering::Relaxed);
        v
    }
    fn delete(&self, key: &[u8]) {
        self.inner.delete(key);
        self.ops.fetch_add(1, Ordering::Relaxed);
    }
    fn quiesce(&self) {
        self.inner.quiesce()
    }
    fn footprint(&self) -> (u64, u64, u64) {
        self.inner.footprint()
    }
}

// ----------------------------------------------------------------------
// workload driving

/// Loads `keys` objects of [`VALUE_SIZE`] bytes.
pub fn preload(sys: &dyn KvSystem, keys: usize) {
    let value = vec![0xA5u8; VALUE_SIZE];
    for i in 0..keys {
        sys.put(&Workload::key_name(i as u64), &value);
    }
    sys.quiesce();
}

/// Runs a closed-loop YCSB workload against `sys`.
pub fn run_ycsb(
    sys: &dyn KvSystem,
    kind: WorkloadKind,
    keys: usize,
    duration: Duration,
    threads: usize,
) -> RunReport {
    let workload = Workload::new(kind, keys as u64, VALUE_SIZE);
    let opts = RunOptions {
        threads,
        duration,
        workload,
        seed: 0xD57A_11AD,
    };
    let value = vec![0x5Au8; VALUE_SIZE];
    run_closed_loop(&opts, |_t| {
        let value = value.clone();
        move |op: &YcsbOp| match op {
            YcsbOp::Read { key } => {
                sys.get(key);
            }
            YcsbOp::Update { key, .. } => {
                sys.put(key, &value);
            }
        }
    })
}

// ----------------------------------------------------------------------
// reporting

/// Formats nanoseconds as microseconds with 1 decimal.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1000.0)
}

/// Formats nanoseconds as milliseconds with 1 decimal.
pub fn ms(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e6)
}

/// Prints the standard percentile row for a histogram.
pub fn percentile_row(label: &str, h: &LatencyHistogram) {
    let (p50, p99, p999, p9999) = h.paper_percentiles();
    println!(
        "{label:<34} {:>9} {:>9} {:>9} {:>9} {:>10}",
        us(p50),
        us(p99),
        us(p999),
        us(p9999),
        h.count()
    );
}

/// Header matching [`percentile_row`].
pub fn percentile_header(title: &str) {
    println!("\n== {title}");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "system", "p50(us)", "p99(us)", "p999(us)", "p9999(us)", "ops"
    );
}

/// Snapshot pair for bandwidth deltas.
pub struct DeviceProbe {
    pub pmem: Arc<PmemPool>,
    pub ssd: Arc<SsdDevice>,
}

impl DeviceProbe {
    /// Current counters as a tuple for `Timeline`.
    pub fn counters(&self, ops: &AtomicU64) -> (u64, u64, u64, u64) {
        let s: SsdSnapshot = self.ssd.stats().snapshot();
        let p: PmemSnapshot = self.pmem.stats().snapshot();
        (
            ops.load(Ordering::Relaxed),
            s.write_bytes,
            s.read_bytes,
            p.flush_bytes + p.bulk_write_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_threads_have_sane_defaults() {
        assert!(scale() > 0.0);
        assert!(threads() >= 2);
        assert!(secs(1.0) >= Duration::from_millis(100));
        assert!(count(100) >= 1);
    }

    #[test]
    fn dstore_adapter_roundtrip() {
        let kv = DStoreKv::new(
            build_dstore(CheckpointMode::Dipper, LoggingMode::Logical, true, true, 64),
            "DStore",
        );
        kv.put(b"k", b"v");
        assert_eq!(kv.get(b"k").unwrap(), b"v");
        assert_eq!(kv.get(b"missing"), None);
        kv.delete(b"k");
        assert_eq!(kv.get(b"k"), None);
        let (dram, pmem, ssd) = kv.footprint();
        assert!(dram > 0 && pmem > 0 && ssd > 0);
    }

    #[test]
    fn counting_adapter_counts() {
        let kv = DStoreKv::new(
            build_dstore(CheckpointMode::Dipper, LoggingMode::Logical, true, true, 64),
            "DStore",
        );
        let counted = CountingKv::new(&kv);
        counted.put(b"a", b"1");
        counted.get(b"a");
        counted.get(b"b");
        assert_eq!(counted.ops.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn sharded_adapter_roundtrip() {
        let kv = ShardedKv::new(
            build_sharded(2, 64, CheckpointMode::Dipper, SchedulerMode::Staggered),
            "DStore x2",
        );
        kv.put(b"k", b"v");
        assert_eq!(kv.get(b"k").unwrap(), b"v");
        assert_eq!(kv.get(b"missing"), None);
        kv.delete(b"k");
        assert_eq!(kv.get(b"k"), None);
        let (dram, pmem, _ssd) = kv.footprint();
        assert!(dram > 0 && pmem > 0);
        assert_eq!(kv.store().shard_count(), 2);
    }

    #[test]
    fn short_ycsb_run_works() {
        let kv = DStoreKv::new(dstore_default(256), "DStore");
        preload(&kv, 256);
        let report = run_ycsb(&kv, WorkloadKind::A, 256, Duration::from_millis(300), 2);
        assert!(report.total_ops() > 50, "{}", report.total_ops());
        assert!(report.read_hist.count() > 0);
        assert!(report.update_hist.count() > 0);
    }
}
