//! Targeted failure injection around the write pipeline's commit point and
//! the checkpoint's atomic root transition — the two places where the
//! paper's crash-consistency argument concentrates (§3.5, §4.5).

use dstore::{DStore, DStoreConfig, DsError};
use dstore_pmem::PmemPool;
use std::sync::Arc;

fn small_manual() -> DStore {
    DStore::create(DStoreConfig::small().with_auto_checkpoint(false)).unwrap()
}

/// Garbage in the spare shadow region must not confuse recovery: the redo
/// overwrites it entirely (idempotency via "always create a new copy").
#[test]
fn recovery_ignores_garbage_in_spare_shadow() {
    let store = small_manual();
    let ctx = store.context();
    for i in 0..50 {
        ctx.put(format!("g{i}").as_bytes(), &vec![1u8; 700])
            .unwrap();
    }
    store.begin_checkpoint_swap_only();
    drop(ctx);
    let img = store.crash();
    // Scribble over the spare shadow region (where the interrupted
    // checkpoint would have been writing) directly in the pool.
    {
        let pool: &Arc<PmemPool> = img.pool();
        // The spare region is the upper half of the pool (shadow B);
        // trash a chunk of it and persist the damage.
        let off = pool.len() - (1 << 20);
        pool.write_bytes(off, &vec![0xDE; 1 << 20]);
        pool.bulk_persist(off, 1 << 20);
    }
    let recovered = DStore::recover(img).unwrap();
    assert!(recovered.recovery_report().redo_checkpoint);
    let ctx = recovered.context();
    for i in 0..50 {
        assert_eq!(ctx.get(format!("g{i}").as_bytes()).unwrap(), vec![1u8; 700]);
    }
}

/// Crash before the very first checkpoint: recovery must rebuild purely
/// from the initial shadow image + active log.
#[test]
fn crash_before_first_checkpoint() {
    let store = small_manual();
    let ctx = store.context();
    for i in 0..30 {
        ctx.put(format!("fresh{i}").as_bytes(), &vec![2u8; 512])
            .unwrap();
    }
    drop(ctx);
    let recovered = DStore::recover(store.crash()).unwrap();
    assert_eq!(recovered.recovery_report().replayed_records, 30);
    assert_eq!(recovered.object_count(), 30);
}

/// A crash on a completely empty store recovers to a working empty store.
#[test]
fn crash_on_empty_store() {
    let store = small_manual();
    let recovered = DStore::recover(store.crash()).unwrap();
    assert_eq!(recovered.object_count(), 0);
    let ctx = recovered.context();
    assert_eq!(ctx.get(b"anything"), Err(DsError::NotFound));
    ctx.put(b"first", b"works").unwrap();
    assert_eq!(ctx.get(b"first").unwrap(), b"works");
}

/// Repeated crash/recover cycles with work in between: no state decay,
/// no leaked pool blocks.
#[test]
fn many_crash_recover_cycles() {
    let mut store = small_manual();
    let mut expected = std::collections::BTreeMap::new();
    for cycle in 0..6u32 {
        let ctx = store.context();
        for i in 0..20 {
            let k = format!("c{}/o{}", cycle, i).into_bytes();
            let v = vec![(cycle * 20 + i) as u8; 300 + (i as usize) * 37];
            ctx.put(&k, &v).unwrap();
            expected.insert(k, v);
        }
        if cycle % 2 == 0 {
            let k = format!("c{}/o0", cycle).into_bytes();
            ctx.delete(&k).unwrap();
            expected.remove(&k);
        }
        if cycle % 3 == 1 {
            store.checkpoint_now();
        }
        if cycle % 3 == 2 {
            store.begin_checkpoint_swap_only();
        }
        drop(ctx);
        store = DStore::recover(store.crash()).unwrap();
        let ctx = store.context();
        assert_eq!(store.object_count(), expected.len() as u64);
        for (k, v) in &expected {
            assert_eq!(&ctx.get(k).unwrap(), v, "cycle {cycle}");
        }
    }
    // Block-pool conservation: free + allocated == capacity across all
    // that churn (delete/replace/recover cycles).
    let f = store.footprint();
    let used_pages = f.ssd_bytes / 4096;
    let logical_pages: u64 = expected
        .values()
        .map(|v| (v.len() as u64).div_ceil(4096))
        .sum();
    assert_eq!(
        used_pages,
        logical_pages + 1, // +1 superblock
        "pool leaked or double-freed blocks"
    );
}

/// Objects written but never committed (simulated via a poisoned client
/// that crashes between data write and commit) never become visible.
/// We approximate the window by crashing while holding an olock whose
/// NOOP record is pending — structurally the same pending-record state.
#[test]
fn pending_records_are_invisible_and_harmless() {
    let store = small_manual();
    let ctx = store.context();
    ctx.put(b"visible", b"yes").unwrap();
    for i in 0..5 {
        let lock = ctx.lock(format!("ghost{i}").as_bytes()).unwrap();
        std::mem::forget(lock); // record stays pending forever
    }
    drop(ctx);
    let recovered = DStore::recover(store.crash()).unwrap();
    assert_eq!(recovered.object_count(), 1);
    let ctx = recovered.context();
    // Ghost names are free for use.
    for i in 0..5 {
        let name = format!("ghost{i}");
        ctx.put(name.as_bytes(), b"reborn").unwrap();
        assert_eq!(ctx.get(name.as_bytes()).unwrap(), b"reborn");
    }
}

/// list_prefix works and survives recovery (new index feature).
#[test]
fn prefix_listing_after_recovery() {
    let store = small_manual();
    let ctx = store.context();
    for tenant in ["a", "b"] {
        for i in 0..25 {
            ctx.put(format!("{tenant}/k{i:02}").as_bytes(), b"v")
                .unwrap();
        }
    }
    drop(ctx);
    let recovered = DStore::recover(store.crash()).unwrap();
    let ctx = recovered.context();
    let a = ctx.list_prefix(b"a/");
    assert_eq!(a.len(), 25);
    assert!(a.iter().all(|k| k.starts_with(b"a/")));
    assert!(a.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(ctx.list_prefix(b"zz/").len(), 0);
}
