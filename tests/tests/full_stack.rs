//! Cross-crate integration tests: the whole stack from the persistence
//! simulator up through DStore's API, plus baseline smoke coverage.

use dstore::{CheckpointMode, DStore, DStoreConfig, LoggingMode, OpenMode};
use dstore_baselines::KvSystem;
use dstore_workload::{ScrambledZipfian, Workload, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A realistic mixed workload with background checkpoints, verified
/// against a model, crashed, recovered, and verified again.
#[test]
fn ycsb_style_workload_with_crash() {
    let mut cfg = DStoreConfig::small();
    cfg.log_size = 64 << 10; // force several checkpoints
    cfg.ssd_pages = 8192;
    let store = DStore::create(cfg).unwrap();
    let ctx = store.context();
    let workload = Workload::new(WorkloadKind::A, 200, 1024);
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    // Preload.
    for key in workload.load_keys() {
        let v = vec![7u8; 1024];
        ctx.put(&key, &v).unwrap();
        model.insert(key, v);
    }
    // Mixed traffic.
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..2000u64 {
        match workload.next_op(&mut rng) {
            dstore_workload::YcsbOp::Read { key } => {
                assert_eq!(
                    ctx.get(&key).ok().as_deref(),
                    model.get(&key).map(|v| &v[..])
                );
            }
            dstore_workload::YcsbOp::Update { key, value_size } => {
                let v = vec![(i % 251) as u8; value_size];
                ctx.put(&key, &v).unwrap();
                model.insert(key, v);
            }
        }
    }
    drop(ctx);
    store.wait_checkpoint_idle();

    let recovered = DStore::recover(store.crash()).unwrap();
    let ctx = recovered.context();
    assert_eq!(recovered.object_count(), model.len() as u64);
    for (k, v) in &model {
        assert_eq!(&ctx.get(k).unwrap(), v);
    }
}

/// Multi-threaded clients + background checkpoints + crash: the final
/// state must be *a* consistent outcome (every object holds a value some
/// thread wrote, with full values — no torn data).
#[test]
fn concurrent_workload_crash_consistency() {
    let mut cfg = DStoreConfig::small();
    cfg.log_size = 64 << 10;
    cfg.ssd_pages = 8192;
    let store = Arc::new(DStore::create(cfg).unwrap());
    std::thread::scope(|s| {
        for t in 0..4u8 {
            let store = Arc::clone(&store);
            s.spawn(move || {
                let ctx = store.context();
                let zipf = ScrambledZipfian::new(50);
                let mut rng = StdRng::seed_from_u64(t as u64);
                for i in 0..300u32 {
                    let key = format!("obj{}", zipf.next(&mut rng));
                    // Value encodes (thread, i) in every byte pair so torn
                    // values are detectable.
                    let tag = (t as u32) << 16 | i;
                    let v: Vec<u8> = tag.to_le_bytes().repeat(256);
                    ctx.put(key.as_bytes(), &v).unwrap();
                }
            });
        }
    });
    let store = Arc::into_inner(store).unwrap();
    store.wait_checkpoint_idle();
    let recovered = DStore::recover(store.crash()).unwrap();
    let ctx = recovered.context();
    for name in ctx.list() {
        let v = ctx.get(&name).unwrap();
        assert_eq!(v.len(), 1024);
        // Untorn: the 4-byte tag repeats through the whole value.
        let tag = &v[..4];
        assert!(
            v.chunks(4).all(|c| c == tag),
            "torn value in {}",
            String::from_utf8_lossy(&name)
        );
    }
}

/// The filesystem API composes with crash recovery.
#[test]
fn filesystem_api_full_cycle() {
    let store = DStore::create(DStoreConfig::small()).unwrap();
    let ctx = store.context();
    let f = ctx.open(b"journal.log", OpenMode::Create(0)).unwrap();
    let mut expected = Vec::new();
    for i in 0..50 {
        let line = format!("entry {i:03}\n");
        f.write(line.as_bytes(), expected.len() as u64).unwrap();
        expected.extend_from_slice(line.as_bytes());
    }
    drop(f);
    drop(ctx);
    let recovered = DStore::recover(store.crash()).unwrap();
    let ctx = recovered.context();
    let f = ctx.open(b"journal.log", OpenMode::Read).unwrap();
    assert_eq!(f.size().unwrap(), expected.len() as u64);
    let mut buf = vec![0u8; expected.len()];
    f.read(&mut buf, 0).unwrap();
    assert_eq!(buf, expected);
}

/// Every system under benchmark obeys basic KV semantics through the
/// shared trait.
#[test]
fn baselines_obey_kv_semantics() {
    use dstore_baselines::{
        lsm::LsmConfig, pagecache::PageCacheConfig, uncached::UncachedConfig, LsmStore,
        PageCacheBTree, UncachedStore,
    };
    use dstore_pmem::PmemPool;
    use dstore_ssd::SsdDevice;

    let systems: Vec<Box<dyn KvSystem>> = vec![
        Box::new(ArcKv(LsmStore::new(
            Arc::new(PmemPool::anon(16 << 20)),
            Arc::new(SsdDevice::anon(16384)),
            LsmConfig::default().no_software_cost(),
        ))),
        Box::new(ArcKv(PageCacheBTree::new(
            Arc::new(PmemPool::anon(16 << 20)),
            Arc::new(SsdDevice::anon(128 * 1024)),
            PageCacheConfig::default().no_software_cost(),
        ))),
        Box::new(ArcKv(UncachedStore::new(
            Arc::new(PmemPool::anon(64 << 20)),
            UncachedConfig::default().no_software_cost(),
        ))),
    ];
    for sys in &systems {
        let name = sys.name();
        for i in 0..200 {
            sys.put(format!("k{i}").as_bytes(), &vec![i as u8; 500]);
        }
        sys.quiesce();
        for i in 0..200 {
            assert_eq!(
                sys.get(format!("k{i}").as_bytes()).unwrap(),
                vec![i as u8; 500],
                "{name}: k{i}"
            );
        }
        sys.delete(b"k0");
        assert_eq!(sys.get(b"k0"), None, "{name}");
        let (_d, p, _s) = sys.footprint();
        assert!(p > 0, "{name}: no PMEM use?");
    }
}

struct ArcKv<T: KvSystem + ?Sized>(Arc<T>);
impl<T: KvSystem + ?Sized> KvSystem for ArcKv<T> {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn put(&self, k: &[u8], v: &[u8]) {
        self.0.put(k, v)
    }
    fn get(&self, k: &[u8]) -> Option<Vec<u8>> {
        self.0.get(k)
    }
    fn delete(&self, k: &[u8]) {
        self.0.delete(k)
    }
    fn quiesce(&self) {
        self.0.quiesce()
    }
    fn footprint(&self) -> (u64, u64, u64) {
        self.0.footprint()
    }
}

/// File-backed devices: a store written through DAX files survives a
/// *real* process-lifetime boundary (drop everything, reopen from disk).
#[test]
fn file_backed_store_reopens_from_disk() {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = DStoreConfig::small();
    cfg.pmem_file = Some(dir.path().join("pool.pmem"));
    cfg.ssd_file = Some(dir.path().join("data.ssd"));
    {
        let store = DStore::create(cfg.clone()).unwrap();
        let ctx = store.context();
        for i in 0..40 {
            ctx.put(format!("disk{i}").as_bytes(), &vec![3u8; 3000])
                .unwrap();
        }
        drop(ctx);
        let _ = store.close(); // checkpoints + syncs the backing files
    }
    // Brand-new devices over the same files.
    let pool = Arc::new(
        dstore_pmem::PoolBuilder::new(
            dstore_dipper::PmemLayout::new(&dstore_dipper::DipperConfig {
                log_size: cfg.log_size,
                shadow_size: cfg.shadow_size,
                swap_threshold: cfg.swap_threshold,
                blackbox_size: 0,
            })
            .total,
        )
        .mode(dstore_pmem::PersistenceMode::Strict)
        .dax_file(dir.path().join("pool.pmem"))
        .build()
        .unwrap(),
    );
    let ssd = Arc::new(
        dstore_ssd::SsdDevice::file_backed(&dir.path().join("data.ssd"), cfg.ssd_pages).unwrap(),
    );
    let image = dstore::store::CrashImage::from_devices(pool, ssd, cfg);
    let store = DStore::recover(image).unwrap();
    let ctx = store.context();
    assert_eq!(store.object_count(), 40);
    assert_eq!(ctx.get(b"disk39").unwrap(), vec![3u8; 3000]);
}

/// Multi-page allocation blocks (§4.2 "SSD pages are grouped into
/// blocks"): the full API + crash recovery work with 4-page blocks, and
/// data written under one geometry reads back exactly.
#[test]
fn multi_page_blocks_end_to_end() {
    let mut cfg = DStoreConfig::small();
    cfg.pages_per_block = 4; // 16 KB blocks
    let store = DStore::create(cfg).unwrap();
    let ctx = store.context();
    let mut model = BTreeMap::new();
    // Sizes straddling block boundaries: sub-block, exactly one block,
    // one block + a page, many blocks.
    for (i, size) in [100usize, 4096, 16384, 16385, 20_000, 70_000, 0]
        .iter()
        .enumerate()
    {
        let k = format!("blk{i}").into_bytes();
        let v: Vec<u8> = (0..*size).map(|j| ((i * 131 + j) % 251) as u8).collect();
        ctx.put(&k, &v).unwrap();
        model.insert(k, v);
    }
    for (k, v) in &model {
        assert_eq!(&ctx.get(k).unwrap(), v);
    }
    // Filesystem API across block boundaries.
    use dstore::OpenMode;
    let f = ctx.open(b"spanning", OpenMode::Create(0)).unwrap();
    let data: Vec<u8> = (0..40_000u32).map(|i| (i % 253) as u8).collect();
    f.write(&data, 10_000).unwrap();
    let mut buf = vec![0u8; 40_000];
    f.read(&mut buf, 10_000).unwrap();
    assert_eq!(buf, data);
    drop(f);
    drop(ctx);
    // Crash + recover keeps everything (replay re-derives the same block
    // geometry from the shadowed directory).
    let recovered = DStore::recover(store.crash()).unwrap();
    let ctx = recovered.context();
    for (k, v) in &model {
        assert_eq!(&ctx.get(k).unwrap(), v);
    }
    let f = ctx.open(b"spanning", OpenMode::Read).unwrap();
    let mut buf = vec![0u8; 40_000];
    f.read(&mut buf, 10_000).unwrap();
    assert_eq!(buf, data);
}

/// Ablation configurations all converge to the same observable state.
#[test]
fn ablation_modes_are_observationally_equivalent() {
    let mut finals = Vec::new();
    for (ckpt, logging, oe) in [
        (CheckpointMode::Cow, LoggingMode::Physical, false),
        (CheckpointMode::Cow, LoggingMode::Logical, false),
        (CheckpointMode::Dipper, LoggingMode::Logical, false),
        (CheckpointMode::Dipper, LoggingMode::Logical, true),
    ] {
        let cfg = DStoreConfig::small()
            .with_checkpoint(ckpt)
            .with_logging(logging)
            .with_oe(oe);
        let store = DStore::create(cfg).unwrap();
        let ctx = store.context();
        for i in 0..150u32 {
            ctx.put(
                format!("m{}", i % 40).as_bytes(),
                &i.to_le_bytes().repeat(100),
            )
            .unwrap();
        }
        ctx.delete(b"m7").unwrap();
        drop(ctx);
        let recovered = DStore::recover(store.crash()).unwrap();
        let ctx = recovered.context();
        let state: Vec<(Vec<u8>, Vec<u8>)> = ctx
            .list()
            .into_iter()
            .map(|k| {
                let v = ctx.get(&k).unwrap();
                (k, v)
            })
            .collect();
        finals.push(state);
    }
    for w in finals.windows(2) {
        assert_eq!(w[0], w[1], "modes diverged");
    }
}
