//! Performance-*shape* assertions from the paper, as executable checks.
//!
//! These are `#[ignore]` by default — they inject device latencies and
//! measure wall time, so they are environment-sensitive (run them
//! explicitly: `cargo test -p dstore-integration --release -- --ignored`).
//! Each test asserts a *relative* claim from §5, with generous margins.

use dstore::{CheckpointMode, DStore, DStoreConfig, LoggingMode};
use dstore_pmem::LatencyModel;
use dstore_ssd::SsdLatency;
use std::time::{Duration, Instant};

fn bench_store(checkpoint: CheckpointMode, logging: LoggingMode) -> DStore {
    let mut cfg = DStoreConfig::bench()
        .with_checkpoint(checkpoint)
        .with_logging(logging);
    cfg.log_size = 1 << 20;
    cfg.ssd_pages = 32 * 1024;
    cfg.pmem_latency = LatencyModel::optane();
    cfg.ssd_latency = SsdLatency::p4800x();
    DStore::create(cfg).unwrap()
}

/// Drives `n` same-size 4 KB updates, returning (mean_ns, max_ns).
fn drive_updates(store: &DStore, n: usize) -> (u64, u64) {
    let ctx = store.context();
    let value = vec![0xAB; 4096];
    for i in 0..512 {
        ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
    }
    let mut total = 0u64;
    let mut max = 0u64;
    for i in 0..n {
        let t = Instant::now();
        ctx.put(format!("k{}", i % 512).as_bytes(), &value).unwrap();
        let ns = t.elapsed().as_nanos() as u64;
        total += ns;
        max = max.max(ns);
    }
    (total / n as u64, max)
}

/// Table 3's headline: the NVMe write dominates a 4 KB put — software
/// overhead stays near the paper's ~10 %.
#[test]
#[ignore = "timing-sensitive; run with --ignored on a quiet machine"]
fn software_overhead_is_small_fraction() {
    let store = bench_store(CheckpointMode::Dipper, LoggingMode::Logical);
    let ctx = store.context();
    let value = vec![0u8; 4096];
    for i in 0..256 {
        ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
    }
    let mut acc = dstore::WriteBreakdown::default();
    let n = 500;
    for i in 0..n {
        let bd = ctx
            .put_instrumented(format!("k{}", i % 256).as_bytes(), &value)
            .unwrap();
        acc.add(&bd);
    }
    let avg = acc.scaled(n);
    let nvme_frac = avg.nvme_ns as f64 / avg.total_ns as f64;
    assert!(
        nvme_frac > 0.7,
        "NVMe write should dominate the 4 KB put: {nvme_frac:.2} of total"
    );
}

/// Figure 9's average-latency claim: logical logging beats physical
/// logging on mean write latency.
#[test]
#[ignore = "timing-sensitive; run with --ignored on a quiet machine"]
fn logical_logging_beats_physical_on_average() {
    let physical = bench_store(CheckpointMode::Cow, LoggingMode::Physical);
    let logical = bench_store(CheckpointMode::Cow, LoggingMode::Logical);
    let (phys_mean, _) = drive_updates(&physical, 2000);
    let (log_mean, _) = drive_updates(&logical, 2000);
    assert!(
        (log_mean as f64) < (phys_mean as f64) * 0.97,
        "logical ({log_mean} ns) should beat physical ({phys_mean} ns)"
    );
}

/// Figure 7's quiescent-freedom claim: with continuous write traffic and
/// many forced checkpoints, DStore never has an idle interval.
#[test]
#[ignore = "timing-sensitive; run with --ignored on a quiet machine"]
fn dipper_never_quiesces_under_checkpoints() {
    let store = bench_store(CheckpointMode::Dipper, LoggingMode::Logical);
    let ctx = store.context();
    let value = vec![1u8; 4096];
    for i in 0..512 {
        ctx.put(format!("k{i}").as_bytes(), &value).unwrap();
    }
    let window = Duration::from_secs(3);
    let start = Instant::now();
    let mut intervals = [0u32; 30]; // 100 ms buckets
    let mut i = 0u64;
    while start.elapsed() < window {
        ctx.put(format!("k{}", i % 512).as_bytes(), &value).unwrap();
        let bucket = (start.elapsed().as_millis() / 100) as usize;
        if bucket < intervals.len() {
            intervals[bucket] += 1;
        }
        i += 1;
    }
    let ckpts = store
        .checkpoint_stats()
        .map(|c| c.completed.into_inner())
        .unwrap_or(0);
    assert!(
        ckpts >= 2,
        "workload should force checkpoints (got {ckpts})"
    );
    let active = (start.elapsed().as_millis() / 100) as usize;
    for (b, &count) in intervals[..active.min(intervals.len())].iter().enumerate() {
        assert!(count > 0, "quiesced in interval {b} despite DIPPER");
    }
}

/// §5.2's logical-logging size-agnosticism: metadata + log-flush cost is
/// roughly the same for 4 KB and 16 KB writes (the data write grows, the
/// control plane does not).
#[test]
#[ignore = "timing-sensitive; run with --ignored on a quiet machine"]
fn control_plane_cost_is_size_agnostic() {
    let store = bench_store(CheckpointMode::Dipper, LoggingMode::Logical);
    let ctx = store.context();
    let mut avgs = vec![];
    for size in [4096usize, 16384] {
        let value = vec![0u8; size];
        for i in 0..128 {
            ctx.put(format!("s{size}k{i}").as_bytes(), &value).unwrap();
        }
        let mut acc = dstore::WriteBreakdown::default();
        let n = 300;
        for i in 0..n {
            let bd = ctx
                .put_instrumented(format!("s{size}k{}", i % 128).as_bytes(), &value)
                .unwrap();
            acc.add(&bd);
        }
        avgs.push(acc.scaled(n));
    }
    let ctrl4 = avgs[0].metadata_ns + avgs[0].log_flush_ns + avgs[0].btree_ns;
    let ctrl16 = avgs[1].metadata_ns + avgs[1].log_flush_ns + avgs[1].btree_ns;
    let nvme4 = avgs[0].nvme_ns;
    let nvme16 = avgs[1].nvme_ns;
    assert!(
        nvme16 as f64 > nvme4 as f64 * 2.0,
        "data cost must grow with size: {nvme4} → {nvme16}"
    );
    assert!(
        (ctrl16 as f64) < (ctrl4 as f64) * 3.0,
        "control-plane cost should not scale with size: {ctrl4} → {ctrl16}"
    );
}
