//! Integration test package for the DStore workspace.
