//! `any::<T>()`: full-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's full domain; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u64_covers_high_bits() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = any::<u64>();
        assert!((0..100).any(|_| s.new_value(&mut rng) > u64::MAX / 2));
    }
}
