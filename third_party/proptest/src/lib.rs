//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Implements randomized property testing with deterministic per-test
//! seeds: strategies (`Range`, tuples, [`strategy::Just`], `prop_map`,
//! `prop_oneof!`, `collection::vec`, `any::<T>()`), the `proptest!`
//! macro, and `prop_assert!`/`prop_assert_eq!`. Differences from real
//! proptest: **no shrinking** (failures report the full generated input
//! instead of a minimal counterexample), no regression-file persistence
//! (`*.proptest-regressions` files are ignored), and seeds are derived
//! from the test name so runs are reproducible without state. See
//! `third_party/README.md`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror: `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the surrounding property with a [`test_runner::TestCaseError`]
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: {:?}",
            l
        );
    }};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((
                ($weight) as u32,
                ::std::boxed::Box::new({
                    let s = $strat;
                    move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::new_value(&s, rng)
                    }
                }) as ::std::boxed::Box<
                    dyn Fn(&mut $crate::test_runner::TestRng) -> _
                >,
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                let input = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                #[allow(unused_mut)]
                let mut case = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                (case(), input)
            });
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper(x: u8) -> Result<(), TestCaseError> {
        prop_assert!(x < 200, "x={x}");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 0usize..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn maps_and_tuples_compose(
            v in prop::collection::vec((0u8..4, any::<u64>()).prop_map(|(a, b)| (a, b % 7)), 1..20)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 7);
            }
        }

        #[test]
        fn oneof_honours_arms(op in prop_oneof![
            3 => (0u8..10).prop_map(|v| ("small", v)),
            1 => Just(("just", 99u8)),
        ]) {
            let (tag, v): (&str, u8) = op;
            prop_assert!(tag == "just" && v == 99 || tag == "small" && v < 10);
        }

        #[test]
        fn question_mark_propagates(x in 0u8..100) {
            helper(x)?;
        }
    }

    // No `#[test]` attribute: this property is *meant* to fail and is
    // invoked manually under catch_unwind below.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn always_fails(x in 0u8..4) {
            prop_assert!(x > 100, "too small");
        }
    }

    #[test]
    fn failing_property_panics_with_input() {
        let r = std::panic::catch_unwind(always_fails);
        let msg = format!("{:?}", r.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("too small"), "{msg}");
        assert!(msg.contains("x = "), "{msg}");
    }
}
