//! Collection strategies (subset: `vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec<S::Value>` with length drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.start + 1 == self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates vectors of `element` values with length in `size` (half-open).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_span_the_range() {
        let s = vec(0u8..10, 0..4);
        let mut rng = TestRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!(v.len() < 4);
            seen[v.len()] = true;
            assert!(v.iter().all(|&x| x < 10));
        }
        assert!(seen.iter().all(|&b| b), "lengths seen: {seen:?}");
    }
}
