//! Test execution: per-test deterministic seeding and case loop.

use std::fmt;

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Why a single generated case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected (unused by this workspace, kept for parity).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// How many cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `case` over `config.cases` deterministic inputs; each invocation
/// returns the case result plus a rendering of the generated input, used
/// in the panic message on failure. Seeds derive from the test name so
/// distinct properties explore distinct streams, stably across runs.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (Result<(), TestCaseError>, String),
{
    let base = fnv1a(name);
    for i in 0..config.cases {
        let seed = base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        let (result, input) = case(&mut rng);
        if let Err(e) = result {
            panic!(
                "proptest `{name}` failed at case {i}/{} (seed {seed:#018x}): {e}\n  input: {input}",
                config.cases
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_invokes_requested_cases_with_distinct_seeds() {
        use rand::RngCore;
        let mut firsts = Vec::new();
        run(&ProptestConfig::with_cases(16), "t", |rng| {
            firsts.push(rng.next_u64());
            (Ok(()), String::new())
        });
        assert_eq!(firsts.len(), 16);
        let mut dedup = firsts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16, "seeds collided");
    }
}
