//! Value-generation strategies (no shrinking).

use std::fmt::Debug;
use std::ops::Range;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `new_value` draws a
/// concrete value directly, so failures are reported unshrunk.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value from `rng`.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + Copy + Debug,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

/// One weighted arm of a [`Union`]: `(weight, generator)`.
pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted choice between generators of one value type; built by
/// `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, generator)` arms.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, gen) in &self.arms {
            if pick < *w as u64 {
                return gen(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("pick exceeded total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn union_respects_weights() {
        let u: Union<u8> = Union::new(vec![(9, Box::new(|_| 0u8)), (1, Box::new(|_| 1u8))]);
        let mut rng = TestRng::seed_from_u64(5);
        let ones: usize = (0..10_000).map(|_| u.new_value(&mut rng) as usize).sum();
        assert!((800..1200).contains(&ones), "ones={ones}");
    }

    #[test]
    fn map_and_tuple_compose() {
        let s = (0u8..4, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..1000 {
            let v = s.new_value(&mut rng);
            assert!((10..24).contains(&v));
        }
    }
}
