//! Offline shim for the `tempfile` API subset this workspace uses:
//! `tempfile::tempdir()` returning an RAII [`TempDir`].
//! See `third_party/README.md`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory under the system temp dir, removed recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the guard without deleting the directory.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a uniquely named directory under `std::env::temp_dir()`.
pub fn tempdir() -> std::io::Result<TempDir> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::env::temp_dir();
    let pid = std::process::id();
    // Nanosecond clock + process id + counter make collisions with other
    // processes' leftovers effectively impossible; `create_dir` (not
    // `create_dir_all`) still detects any that occur and retries.
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".tmp-dstore-{pid}-{nanos}-{n}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(std::io::Error::other("could not create unique temp dir"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_creates_and_cleans_up() {
        let path;
        {
            let d = tempdir().unwrap();
            path = d.path().to_path_buf();
            assert!(path.is_dir());
            std::fs::write(path.join("f"), b"x").unwrap();
        }
        assert!(!path.exists(), "dir not removed on drop");
    }

    #[test]
    fn tempdirs_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
