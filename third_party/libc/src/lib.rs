//! Offline shim for the `libc` symbols this workspace uses: the
//! `mmap`/`munmap`/`msync` family backing the emulated-DAX PMEM pools,
//! plus the `epoll`/`eventfd` family backing `dstore-server`'s
//! readiness loop. Constants are Linux values (the only supported
//! target of the emulation layer). See `third_party/README.md`.

#![allow(non_camel_case_types)]

/// Opaque C void.
pub type c_void = core::ffi::c_void;
/// C `int`.
pub type c_int = i32;
/// C `size_t`.
pub type size_t = usize;
/// C `off_t` (LP64 Linux).
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 0x1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 0x2;
/// Private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// Shared mapping (writes reach the backing file).
pub const MAP_SHARED: c_int = 0x01;
/// Anonymous mapping (no backing file).
pub const MAP_ANONYMOUS: c_int = 0x20;
/// Synchronous `msync`.
pub const MS_SYNC: c_int = 0x4;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// C `uint32_t`.
pub type uint32_t = u32;
/// C `uint64_t`.
pub type uint64_t = u64;

/// Readable readiness (epoll).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (epoll).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Register a new fd with an epoll instance.
pub const EPOLL_CTL_ADD: c_int = 1;
/// Remove an fd from an epoll instance.
pub const EPOLL_CTL_DEL: c_int = 2;
/// Change the event mask of a registered fd.
pub const EPOLL_CTL_MOD: c_int = 3;
/// Close-on-exec flag for `epoll_create1`.
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
/// Close-on-exec flag for `eventfd`.
pub const EFD_CLOEXEC: c_int = 0o2000000;
/// Non-blocking flag for `eventfd`.
pub const EFD_NONBLOCK: c_int = 0o4000;
/// `errno` value for "try again" (EWOULDBLOCK on Linux).
pub const EAGAIN: c_int = 11;
/// `errno` value for "interrupted system call".
pub const EINTR: c_int = 4;

/// One epoll event: a readiness mask plus the caller's 64-bit token.
/// `repr(packed)` matches the x86-64 kernel ABI (no padding between
/// `events` and `u64`).
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Readiness mask (`EPOLLIN | …`).
    pub events: uint32_t,
    /// Caller-chosen token, echoed back verbatim.
    pub u64: uint64_t,
}

extern "C" {
    /// Maps files or devices into memory.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmaps a mapped region.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Synchronizes a mapped region with its backing file.
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
    /// Creates an epoll instance; `flags` is `EPOLL_CLOEXEC` or 0.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// Adds/modifies/removes `fd` in the epoll interest list.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// Waits for readiness events; returns the number stored in
    /// `events`, 0 on timeout, -1 on error (check `errno`).
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// Creates an eventfd counter usable as a cross-thread wakeup.
    pub fn eventfd(initval: c_int, flags: c_int) -> c_int;
    /// Reads from a file descriptor.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> isize;
    /// Writes to a file descriptor.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> isize;
    /// Closes a file descriptor.
    pub fn close(fd: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_mmap_roundtrip() {
        unsafe {
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xAB;
            assert_eq!(*(p as *mut u8), 0xAB);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn eventfd_wakes_epoll() {
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0);
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0);
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);

            // Nothing signalled yet: zero-timeout wait sees nothing.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            // Signal the eventfd; epoll must report token 42 readable.
            let one: u64 = 1;
            assert_eq!(
                write(ev, (&one as *const u64).cast(), 8),
                8,
                "eventfd write"
            );
            let n = epoll_wait(ep, out.as_mut_ptr(), 4, 1000);
            assert_eq!(n, 1);
            let got = out[0];
            assert_eq!({ got.u64 }, 42);
            assert_ne!({ got.events } & EPOLLIN, 0);

            // Drain; readiness clears.
            let mut v: u64 = 0;
            assert_eq!(read(ev, (&mut v as *mut u64).cast(), 8), 8);
            assert_eq!(v, 1);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);

            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }
}
