//! Offline shim for the `libc` symbols this workspace uses: the
//! `mmap`/`munmap`/`msync` family backing the emulated-DAX PMEM pools.
//! Constants are Linux values (the only supported target of the
//! emulation layer). See `third_party/README.md`.

#![allow(non_camel_case_types)]

/// Opaque C void.
pub type c_void = core::ffi::c_void;
/// C `int`.
pub type c_int = i32;
/// C `size_t`.
pub type size_t = usize;
/// C `off_t` (LP64 Linux).
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 0x1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 0x2;
/// Private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x02;
/// Shared mapping (writes reach the backing file).
pub const MAP_SHARED: c_int = 0x01;
/// Anonymous mapping (no backing file).
pub const MAP_ANONYMOUS: c_int = 0x20;
/// Synchronous `msync`.
pub const MS_SYNC: c_int = 0x4;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

extern "C" {
    /// Maps files or devices into memory.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmaps a mapped region.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Synchronizes a mapped region with its backing file.
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_mmap_roundtrip() {
        unsafe {
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xAB;
            assert_eq!(*(p as *mut u8), 0xAB);
            assert_eq!(munmap(p, 4096), 0);
        }
    }
}
