//! Offline shim for the `parking_lot` API subset this workspace uses.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal API-compatible implementations of its
//! external dependencies (see `third_party/README.md`). This crate maps
//! `parking_lot::{Mutex, RwLock, Condvar}` onto `std::sync` primitives:
//! no poisoning (poisoned locks are recovered transparently), guards are
//! returned directly rather than through `Result`.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]. The `Option` lets [`Condvar::wait`] move the
/// underlying std guard out and back in around the wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`] (wait takes the guard
/// by `&mut`, as in `parking_lot`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
