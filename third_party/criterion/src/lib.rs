//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! Provides the harness entry points (`criterion_group!`/
//! `criterion_main!`), `Criterion` configuration, benchmark groups with
//! element/byte throughput, and `Bencher::iter`. Measurement is a plain
//! wall-clock loop (warm-up, then timed iterations) reporting mean
//! ns/iter and derived throughput — no outlier analysis, plots, or
//! saved baselines. See `third_party/README.md`.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Benchmark harness configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Minimum timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target duration of the timed phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Duration of the untimed warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints its mean time and throughput.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up_time,
            measure: self.criterion.measurement_time,
            min_iters: self.criterion.sample_size as u64,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let id = id.into();
        let ns = if b.iters == 0 {
            f64::NAN
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>12.0} elem/s", n as f64 * 1e9 / ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  thrpt: {:>12.1} MiB/s",
                    n as f64 * 1e9 / ns / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{:<28} time: {:>12.1} ns/iter ({} iters){rate}",
            self.name, id, ns, b.iters
        );
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    min_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < self.min_iters || start.elapsed() < self.measure {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// Defines a benchmark group function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut c = quick();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls >= 5, "calls={calls}");
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        targets = group_target
    }

    fn group_target(c: &mut Criterion) {
        let mut g = c.benchmark_group("macro");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn group_macro_builds_runner() {
        shim_group();
    }
}
