//! Offline shim for the `rayon` API subset this workspace uses:
//! [`join`] and `Vec::into_par_iter().map(..).collect()` /
//! `.for_each(..)` via the [`prelude`].
//!
//! Parallelism comes from `std::thread::scope` with a shared work queue
//! sized to `available_parallelism`, not a global work-stealing pool.
//! Results preserve input order and worker panics propagate to the
//! caller, matching rayon's observable behaviour for these entry
//! points. See `third_party/README.md`.

use std::sync::Mutex;

/// Common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(items)
}

/// Order-preserving parallel map over owned items.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut queue: Vec<Option<(usize, T)>> = items.into_iter().enumerate().map(Some).collect();
    queue.reverse();
    let queue = Mutex::new(queue);
    let out: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..worker_count(n))
            .map(|_| {
                s.spawn(|| loop {
                    let next = queue.lock().unwrap().pop();
                    match next.flatten() {
                        Some((i, item)) => {
                            let r = f(item);
                            out.lock().unwrap()[i] = Some(r);
                        }
                        None => break,
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
    });
    out.into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("parallel_map slot unfilled"))
        .collect()
}

/// Conversion into a parallel iterator (subset: owned `Vec<T>`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Collection from a parallel iterator (subset: `Vec`, `Result`-free).
pub trait FromParallelIterator<T> {
    /// Builds the collection from order-preserved mapped results.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Parallel iterator operations (subset: `map`, `for_each`, `collect`).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Consumes the iterator into an ordered `Vec`.
    fn into_ordered_vec(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        ParMap { source: self, f }
    }

    /// Runs `f` on each element in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        parallel_map(self.into_ordered_vec(), f);
    }

    /// Gathers elements into a collection, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_ordered(self.into_ordered_vec())
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;

    fn into_ordered_vec(self) -> Vec<T> {
        self.items
    }
}

/// Lazy parallel map; work runs at `collect`/`for_each`.
pub struct ParMap<S, F> {
    source: S,
    f: F,
}

impl<S, R, F> ParallelIterator for ParMap<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync + Send,
{
    type Item = R;

    fn into_ordered_vec(self) -> Vec<R> {
        parallel_map(self.source.into_ordered_vec(), self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..100u64).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        (0..37usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .for_each(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        assert_eq!(hits.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            vec![1u8, 2, 3].into_par_iter().for_each(|x| {
                if x == 2 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }
}
