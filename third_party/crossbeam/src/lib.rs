//! Offline shim for the `crossbeam` API subset this workspace uses:
//! `crossbeam::channel::unbounded`, mapped onto `std::sync::mpsc`.
//! See `third_party/README.md` for why these shims exist.

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::sync::Arc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error: the receiving half was dropped.
    pub struct SendError<T>(pub T);

    // Manual impl so `T: Debug` is not required, matching upstream.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Error: the sending half was dropped and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Receiving half of an unbounded channel. Clonable for API parity
    /// (each message is still delivered to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<std::sync::Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the queue is empty.
        pub fn try_recv(&self) -> Option<T> {
            let rx = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            rx.try_recv().ok()
        }
    }

    /// Creates an unbounded MPMC-ish channel (MPSC underneath; receivers
    /// share one queue).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(std::sync::Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            tx.send(42).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            assert_eq!(rx.try_recv(), Some(42));
            assert_eq!(rx.try_recv(), None);
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn worker_thread_drains_jobs() {
            let (tx, rx) = unbounded::<u32>();
            let worker = std::thread::spawn(move || {
                let mut sum = 0;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            });
            for i in 1..=10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(worker.join().unwrap(), 55);
        }
    }
}
