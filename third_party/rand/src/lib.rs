//! Offline shim for the `rand` 0.8 API subset this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, so seeded value *streams* differ from
//! upstream, but every workspace use only relies on determinism for a
//! fixed seed plus reasonable statistical quality, which this provides.
//! See `third_party/README.md`.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range (`Rng::gen_range`).
pub trait SampleUniform: Sized {
    /// Draws one value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 per unit span here; irrelevant for
                // workload generation.
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset: [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn f64_standard_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p={p}");
    }
}
